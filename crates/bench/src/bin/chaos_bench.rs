//! Chaos benchmark: the deterministic Ape-X chaos engine under 20%
//! worker-crash injection plus stalling shards, against a fault-free run
//! of the identical configuration and step budget.
//!
//! Checks three properties and writes `BENCH_chaos.json` at the repo
//! root:
//!
//! 1. **Determinism** — two runs with the same [`FaultPlan`] seed produce
//!    a bit-identical fault schedule and identical post-recovery stats.
//! 2. **Recovery** — greedy evaluation of the faulted run's best banked
//!    checkpoint on clean environments lands within 10% of the
//!    fault-free run's, at the same step budget.
//! 3. **Accounting** — crash/restart counts and recovery-latency
//!    p50/p99 are recorded for the report.
//!
//! `--smoke` runs a tiny budget, keeps the determinism check, skips the
//! recovery threshold (too few episodes to compare), and writes nothing —
//! tier-1 uses it as a does-it-run gate.

use rlgraph_agents::{Backend, DqnAgent, DqnConfig, EpsilonSchedule};
use rlgraph_dist::{
    run_apex_chaos, ChaosApexConfig, ChaosReport, FaultKind, FaultPlan, LearnerCheckpoint,
};
use rlgraph_envs::{CartPole, Env};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_tensor::Tensor;

const SEED: u64 = 2024;
const RECENT_WINDOW: usize = 50;
const RECOVERY_TOLERANCE: f64 = 0.10;
const EVAL_EPISODES: usize = 30;

struct Budget {
    num_workers: usize,
    envs_per_worker: usize,
    task_size: usize,
    num_shards: usize,
    steps: u64,
}

const FULL: Budget =
    Budget { num_workers: 4, envs_per_worker: 2, task_size: 48, num_shards: 3, steps: 2500 };
const SMOKE: Budget =
    Budget { num_workers: 2, envs_per_worker: 2, task_size: 16, num_shards: 2, steps: 12 };

fn agent_config() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[64], Activation::Tanh),
        memory_capacity: 65_536,
        batch_size: 32,
        n_step: 3,
        // conservative step size + slow target sync keep the late curve
        // stable, so the recovery comparison measures fault handling, not
        // which run diverges first
        optimizer: rlgraph_nn::OptimizerSpec::adam(3e-4),
        target_sync_every: 200,
        gamma: 0.97,
        epsilon: EpsilonSchedule { start: 1.0, end: 0.05, decay_steps: 3000 },
        seed: 7,
        ..DqnConfig::default()
    }
}

fn env_factory(w: usize, e: usize) -> Box<dyn Env> {
    Box::new(CartPole::new((w * 100 + e) as u64, 200))
}

fn config(budget: &Budget, plan: FaultPlan) -> ChaosApexConfig {
    ChaosApexConfig::builder()
        .agent(agent_config())
        .num_workers(budget.num_workers)
        .envs_per_worker(budget.envs_per_worker)
        .task_size(budget.task_size)
        .num_shards(budget.num_shards)
        .steps(budget.steps)
        .weight_sync_interval(4)
        .checkpoint_every(Some(16))
        .fault_plan(plan)
        .build()
        .expect("chaos config")
}

/// The ISSUE's chaos recipe: 20% injected worker crashes plus one shard
/// stall. Each crash costs a worker its in-flight task plus the restart
/// delay (2 ticks), so a per-task crash rate of 1/15 loses ≈20% of
/// worker time to crash injection; the stall is scheduled explicitly —
/// exactly one, mid-run, on shard 1.
fn fault_plan() -> FaultPlan {
    FaultPlan::builder(SEED)
        .worker_crash_rate(1.0 / 15.0)
        .shard_stall(0.0, 6)
        .inject_at(1200, FaultKind::ShardStall, 1)
        .weight_drop_rate(0.1)
        .build()
        .expect("fault plan")
}

/// Best mean over any `window` consecutive episode returns — the "did it
/// learn the task" statistic. Tiny-DQN tail returns swing with late-run
/// luck; the peak window is stable, so the fault-free vs chaos comparison
/// measures fault handling rather than which run's curve wobbled last.
fn peak_window_return(timeline: &[(f64, f32)], window: usize) -> f64 {
    if timeline.is_empty() {
        return 0.0;
    }
    let w = window.min(timeline.len());
    let mut sum: f64 = timeline[..w].iter().map(|(_, r)| *r as f64).sum();
    let mut best = sum;
    for i in w..timeline.len() {
        sum += timeline[i].1 as f64 - timeline[i - w].1 as f64;
        best = best.max(sum);
    }
    best / w as f64
}

/// Greedy rollout of a banked checkpoint on clean environments. This is
/// the recovery statistic: crashes truncate episodes before they
/// complete and interrupted episodes are never recorded, so the faulted
/// run's *recorded* returns understate its policy. Restoring each run's
/// best banked checkpoint and evaluating both on identical fault-free
/// envs compares what the runs actually learned.
fn eval_checkpoint(ckpt: &LearnerCheckpoint, episodes: usize) -> f64 {
    let probe = CartPole::new(0, 200);
    let mut agent = DqnAgent::new(agent_config(), &probe.state_space(), &probe.action_space())
        .expect("eval agent");
    ckpt.restore(&mut agent).expect("restore banked checkpoint");
    let mut total = 0.0f64;
    for ep in 0..episodes {
        let mut env = CartPole::new(9000 + ep as u64, 200);
        let mut obs = env.reset();
        loop {
            let batched = Tensor::stack(std::slice::from_ref(&obs)).expect("stack obs");
            let actions = agent.get_actions(batched, false).expect("greedy act");
            let action = actions.unstack().expect("unstack action").remove(0);
            let step = env.step(&action).expect("env step");
            total += step.reward as f64;
            if step.terminal {
                break;
            }
            obs = step.obs;
        }
    }
    total / episodes as f64
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn report_json(report: &ChaosReport) -> String {
    format!(
        concat!(
            "{{\"injected_events\": {}, \"worker_crashes\": {}, \"worker_restarts\": {}, ",
            "\"shard_stalls\": {}, \"learner_slowdowns\": {}, \"dropped_syncs\": {}, ",
            "\"forced_syncs\": {}, \"max_weight_lag_seen\": {}, \"degraded_steps\": {}, ",
            "\"sample_retries\": {}, \"checkpoints\": {}, \"restores\": {}, ",
            "\"recovery_p50_us\": {}, \"recovery_p99_us\": {}}}"
        ),
        report.events.len(),
        report.worker_crashes,
        report.worker_restarts,
        report.shard_stalls,
        report.learner_slowdowns,
        report.dropped_syncs,
        report.forced_syncs,
        report.max_weight_lag_seen,
        report.degraded_steps,
        report.sample_retries,
        report.checkpoints,
        report.restores,
        report.recovery_p50_us(),
        report.recovery_p99_us(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { &SMOKE } else { &FULL };

    println!(
        "chaos bench: {} workers x {} envs, {} shards, {} steps{}",
        budget.num_workers,
        budget.envs_per_worker,
        budget.num_shards,
        budget.steps,
        if smoke { " (smoke)" } else { "" }
    );

    // Fault-free baseline at the identical step budget.
    let (free_stats, free_report) =
        run_apex_chaos(config(budget, FaultPlan::disabled()), env_factory).expect("fault-free run");
    assert_eq!(free_report.events.len(), 0, "disabled plan must inject nothing");

    // Chaos run, twice with the same seed for the determinism contract.
    let (chaos_stats, chaos_report) =
        run_apex_chaos(config(budget, fault_plan()), env_factory).expect("chaos run");
    let (rerun_stats, rerun_report) =
        run_apex_chaos(config(budget, fault_plan()), env_factory).expect("chaos rerun");
    assert_eq!(
        chaos_report, rerun_report,
        "same FaultPlan seed must give a bit-identical fault schedule and recovery accounting"
    );
    assert_eq!(chaos_stats.env_frames, rerun_stats.env_frames, "determinism: frames");
    assert_eq!(chaos_stats.updates, rerun_stats.updates, "determinism: updates");
    assert_eq!(chaos_stats.losses, rerun_stats.losses, "determinism: losses");
    assert_eq!(
        chaos_stats.reward_timeline, rerun_stats.reward_timeline,
        "determinism: reward timeline"
    );
    println!("determinism: two same-seed runs bit-identical ✓");

    let free_peak = peak_window_return(&free_stats.reward_timeline, RECENT_WINDOW);
    let chaos_peak = peak_window_return(&chaos_stats.reward_timeline, RECENT_WINDOW);
    // Evaluate each run's best *banked* checkpoint — the snapshot a
    // deployment would restore. The endpoint checkpoint is a lottery
    // (tiny-DQN curves oscillate late); the best-banked artifact is the
    // stable measure of what the run achieved.
    let free_ckpt = free_report
        .best_checkpoint
        .as_ref()
        .or(free_report.final_checkpoint.as_ref())
        .expect("fault-free checkpoint");
    let chaos_ckpt = chaos_report
        .best_checkpoint
        .as_ref()
        .or(chaos_report.final_checkpoint.as_ref())
        .expect("chaos checkpoint");
    let free_return = eval_checkpoint(free_ckpt, EVAL_EPISODES);
    let chaos_return = eval_checkpoint(chaos_ckpt, EVAL_EPISODES);
    let retention = if free_return.abs() > f64::EPSILON { chaos_return / free_return } else { 1.0 };
    println!(
        "fault-free: {} updates, {} frames, eval return {:.3} (recorded peak {:.3})",
        free_stats.updates, free_stats.env_frames, free_return, free_peak
    );
    println!(
        "chaos:      {} updates, {} frames, eval return {:.3} (recorded peak {:.3}, retention {:.3})",
        chaos_stats.updates, chaos_stats.env_frames, chaos_return, chaos_peak, retention
    );
    println!(
        "faults: {} crashes, {} restarts, {} stalls, {} dropped syncs; recovery p50 {}us p99 {}us",
        chaos_report.worker_crashes,
        chaos_report.worker_restarts,
        chaos_report.shard_stalls,
        chaos_report.dropped_syncs,
        chaos_report.recovery_p50_us(),
        chaos_report.recovery_p99_us()
    );

    if !smoke {
        assert!(chaos_report.worker_crashes > 0, "plan should inject worker crashes");
        assert!(chaos_report.shard_stalls > 0, "plan should inject at least one shard stall");
        assert!(
            chaos_return >= free_return * (1.0 - RECOVERY_TOLERANCE),
            "recovery failed: chaos eval return {chaos_return:.3} is more than {:.0}% below \
             fault-free {free_return:.3}",
            RECOVERY_TOLERANCE * 100.0
        );
        println!("recovery: within {:.0}% of fault-free ✓", RECOVERY_TOLERANCE * 100.0);
    }

    if smoke {
        println!("smoke mode: skipping BENCH_chaos.json");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"seed\": {},\n",
            "  \"budget\": {{\"workers\": {}, \"envs_per_worker\": {}, \"shards\": {}, ",
            "\"task_size\": {}, \"steps\": {}}},\n",
            "  \"fault_plan\": {{\"worker_crash_rate\": 0.0667, ",
            "\"scheduled_shard_stall\": {{\"step\": 1200, \"shard\": 1, \"stall_steps\": 6}}, ",
            "\"weight_drop_rate\": 0.1}},\n",
            "  \"fault_free\": {{\"updates\": {}, \"env_frames\": {}, ",
            "\"eval_return\": {}, \"peak_window_return\": {}}},\n",
            "  \"chaos\": {{\"updates\": {}, \"env_frames\": {}, ",
            "\"eval_return\": {}, \"peak_window_return\": {}, \"retention\": {}}},\n",
            "  \"faults\": {},\n",
            "  \"determinism\": {{\"same_seed_bit_identical\": true}}\n",
            "}}\n"
        ),
        SEED,
        budget.num_workers,
        budget.envs_per_worker,
        budget.num_shards,
        budget.task_size,
        budget.steps,
        free_stats.updates,
        free_stats.env_frames,
        json_f(free_return),
        json_f(free_peak),
        chaos_stats.updates,
        chaos_stats.env_frames,
        json_f(chaos_return),
        json_f(chaos_peak),
        json_f(retention),
        report_json(&chaos_report),
    );
    std::fs::write("BENCH_chaos.json", json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");
}
