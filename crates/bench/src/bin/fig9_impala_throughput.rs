//! Figure 9: IMPALA throughput on SeekAvoid vs worker count — RLgraph
//! vs the DeepMind-reference-style implementation.
//!
//! Paper: "RLgraph achieves about 10-15% higher mean throughput (5 runs)
//! for fewer workers until both implementations are limited by updates.
//! ... DM's code also carried out unneeded variable assignments in the
//! actor. Removing these yielded 20% improvement in a single-worker
//! setting."
//!
//! The harness measures real per-rollout times for both actor variants and
//! the learner step, then scales worker counts on the discrete-event
//! simulator (single-core machine; DESIGN.md §2).

use bench::{tsv_header, tsv_row};
use rlgraph_agents::impala::{ImpalaActor, ImpalaLearner};
use rlgraph_agents::{Backend, ImpalaConfig};
use rlgraph_baselines::dm_style_config;
use rlgraph_envs::{Env, SeekAvoid, SeekAvoidConfig, VectorEnv};
use rlgraph_graph::TensorQueue;
use rlgraph_nn::{Activation, LayerSpec, NetworkSpec};
use rlgraph_sim::{simulate_impala, ImpalaSimParams};
#[allow(unused_imports)]
use rlgraph_spaces::Space as _Space;
use rlgraph_spaces::Space;
use std::time::Instant;

const ENVS_PER_ACTOR: usize = 1;
const ROLLOUT_LEN: usize = 20;
/// The paper's learner runs on a V100 GPU; the measured CPU train step is
/// scaled by this documented model factor (DESIGN.md §2), which is what
/// places the actor-bound → learner-bound crossover inside the paper's
/// worker range.
const GPU_SPEEDUP: f64 = 50.0;

fn base_config() -> ImpalaConfig {
    ImpalaConfig {
        backend: Backend::Static,
        network: NetworkSpec::new(vec![
            LayerSpec::Flatten,
            LayerSpec::Dense { units: 128, activation: Activation::Relu },
            LayerSpec::Dense { units: 64, activation: Activation::Relu },
        ]),
        rollout_len: ROLLOUT_LEN,
        queue_capacity: 8,
        seed: 9,
        ..ImpalaConfig::default()
    }
}

fn envs() -> VectorEnv {
    VectorEnv::from_factory(ENVS_PER_ACTOR, |i| {
        Box::new(SeekAvoid::new(SeekAvoidConfig {
            seed: i as u64,
            // DM-Lab 3-D tasks "are more expensive to render than Atari
            // tasks" — the render-cost knob models that regime.
            render_cost: 8,
            rays: 32,
            max_steps: 100_000,
            ..SeekAvoidConfig::default()
        })) as Box<dyn Env>
    })
    .expect("envs")
}

/// Measures seconds per fused rollout for an actor configuration.
fn calibrate_rollout(cfg: &ImpalaConfig) -> (f64, f64) {
    let queue = TensorQueue::new("calib", 512);
    let mut actor = ImpalaActor::new(cfg, envs(), queue.clone()).expect("actor");
    actor.rollout().expect("warm-up");
    let runs = 15;
    let frames_before = actor.env_frames();
    let t0 = Instant::now();
    for _ in 0..runs {
        actor.rollout().expect("rollout");
    }
    let per_rollout = t0.elapsed().as_secs_f64() / runs as f64;
    let frames_per_rollout = (actor.env_frames() - frames_before) as f64 / runs as f64;
    (per_rollout, frames_per_rollout)
}

/// Measures seconds per learner step (dequeue + v-trace + optimize).
fn calibrate_learner(cfg: &ImpalaConfig) -> f64 {
    let queue = TensorQueue::new("calib-learn", 64);
    let calib_envs = envs();
    let state_space = calib_envs.state_space();
    let num_actions = calib_envs.action_space().num_categories().expect("discrete");
    let mut actor = ImpalaActor::new(cfg, calib_envs, queue.clone()).expect("actor");
    let mut learner = ImpalaLearner::new(
        cfg,
        Space::float_box_bounded(state_space.shape().expect("shape"), 0.0, 1.5),
        num_actions,
        ENVS_PER_ACTOR,
        queue,
    )
    .expect("learner");
    // pre-fill the queue so the learner never blocks during measurement
    let runs = 10;
    for _ in 0..runs + 2 {
        actor.rollout().expect("rollout");
    }
    learner.learn().expect("warm-up");
    let t0 = Instant::now();
    for _ in 0..runs {
        learner.learn().expect("learn");
    }
    t0.elapsed().as_secs_f64() / runs as f64
}

fn main() {
    let trace_path = bench::trace_arg();
    println!("# Figure 9: IMPALA throughput on SeekAvoid (simulated cluster, measured costs)");
    let clean = base_config();
    let dm = dm_style_config(&clean);
    println!("# calibrating rlgraph actor ...");
    let (rlgraph_rollout, frames_per_rollout) = calibrate_rollout(&clean);
    println!("# calibrating dm-style actor (redundant per-step assignments) ...");
    let (dm_rollout, _) = calibrate_rollout(&dm);
    let train_time = calibrate_learner(&clean) / GPU_SPEEDUP;
    println!(
        "# measured: rlgraph rollout {:.2} ms vs dm-style {:.2} ms (+{:.0}% single-actor); learner {:.2} ms",
        rlgraph_rollout * 1e3,
        dm_rollout * 1e3,
        (dm_rollout / rlgraph_rollout - 1.0) * 100.0,
        train_time * 1e3
    );
    println!("# (learner step scaled by the documented {}x GPU model)", GPU_SPEEDUP);
    tsv_header(&["workers", "rlgraph_fps", "dm_style_fps", "rlgraph_advantage_pct"]);
    for workers in [4usize, 8, 16, 32, 64, 128, 256] {
        let params = |rollout_time: f64| ImpalaSimParams {
            num_actors: workers,
            frames_per_rollout,
            rollout_time,
            train_time,
            queue_capacity: 8,
            duration: 120.0,
        };
        let a = simulate_impala(&params(rlgraph_rollout));
        let b = simulate_impala(&params(dm_rollout));
        tsv_row(&[
            workers.to_string(),
            format!("{:.0}", a.frames_per_second),
            format!("{:.0}", b.frames_per_second),
            format!("{:.0}", (a.frames_per_second / b.frames_per_second.max(1e-9) - 1.0) * 100.0),
        ]);
    }
    println!("# paper shape: rlgraph ~10-15% above the dm-style actor at low worker counts;");
    println!("# the gap closes once both are limited by learner updates. Our crossover sits at");
    println!("# lower worker counts than the paper's because this substrate's renderer is far");
    println!("# cheaper than DM-Lab's real 3-D renderer (see EXPERIMENTS.md).");
    if let Some(path) = trace_path {
        // Chrome trace of a 16-actor simulated run with the measured
        // rlgraph costs, on the virtual clock (load in chrome://tracing).
        let params = ImpalaSimParams {
            num_actors: 16,
            frames_per_rollout,
            rollout_time: rlgraph_rollout,
            train_time,
            queue_capacity: 8,
            duration: 30.0,
        };
        let json = bench::impala_sim_chrome_trace(&params);
        std::fs::write(&path, json).expect("write trace file");
        println!("# wrote Chrome trace of the simulated 16-actor run to {}", path.display());
    }
}
