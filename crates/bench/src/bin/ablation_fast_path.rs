//! Ablation: the define-by-run edge-contraction fast path vs. component
//! depth.
//!
//! The paper motivates contraction as removing "intermediate component
//! calls" when traversing the graph via API decorators (§5.1). The benefit
//! should therefore grow with the number of components on the acting path.
//! This harness sweeps network depth and reports traced vs. contracted
//! call latency plus the dispatch counts the fast path eliminates.

use bench::{tsv_header, tsv_row};
use rlgraph_agents::components::Policy;
use rlgraph_core::{
    BuildCtx, Component, ComponentGraphBuilder, ComponentId, ComponentStore, DbrExecutor,
    GraphExecutor as _, OpRef,
};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_spaces::Space;
use rlgraph_tensor::{OpKind, Tensor};
use std::time::Instant;

struct ActRoot {
    policy: ComponentId,
}

impl Component for ActRoot {
    fn name(&self) -> &str {
        "act-root"
    }
    fn api_methods(&self) -> Vec<String> {
        vec!["act".into()]
    }
    fn call_api(
        &mut self,
        _m: &str,
        ctx: &mut BuildCtx,
        id: ComponentId,
        inputs: &[OpRef],
    ) -> rlgraph_core::Result<Vec<OpRef>> {
        let q = ctx.call(self.policy, "q_values", inputs)?[0];
        ctx.graph_fn(id, "argmax", &[q], 1, |ctx, ins| {
            Ok(vec![ctx.emit(OpKind::ArgMax { axis: 1 }, &[ins[0]])?])
        })
    }
    fn sub_components(&self) -> Vec<ComponentId> {
        vec![self.policy]
    }
}

fn build(depth: usize) -> (DbrExecutor, usize) {
    // `depth` dense layers of width 16 — parameter count stays small so
    // dispatch, not matmul, dominates.
    let spec = NetworkSpec::mlp(&vec![16; depth], Activation::Tanh);
    let mut store = ComponentStore::new();
    let policy = Policy::new(&mut store, "policy", &spec, 4, true, 7);
    let policy_id = store.add(policy);
    let root = store.add(ActRoot { policy: policy_id });
    let n_components = store.len();
    let builder = ComponentGraphBuilder::new(root)
        .api_method("act", vec![Space::float_box_bounded(&[8], -1.0, 1.0).with_batch_rank()]);
    (builder.build_dbr(store).expect("build").0, n_components)
}

fn time_calls(exec: &mut DbrExecutor, x: &Tensor, calls: usize) -> f64 {
    // warm-up (also records the program when the fast path is armed)
    for _ in 0..5 {
        exec.execute("act", std::slice::from_ref(x)).expect("act");
    }
    let t0 = Instant::now();
    for _ in 0..calls {
        exec.execute("act", std::slice::from_ref(x)).expect("act");
    }
    t0.elapsed().as_secs_f64() / calls as f64 * 1e6
}

fn main() {
    println!("# Ablation: edge contraction vs. component depth (define-by-run acting)");
    tsv_header(&[
        "dense_layers",
        "components",
        "traced_us",
        "contracted_us",
        "saved_us",
        "speedup",
        "api_calls_per_trace",
    ]);
    let x = Tensor::full(&[4, 8], 0.3);
    let calls = 2000;
    for depth in [1usize, 2, 4, 8, 16] {
        let (mut traced, n_components) = build(depth);
        let traced_us = time_calls(&mut traced, &x, calls);
        let (api_total, _) = traced.dispatch_counters();
        let api_per_call = api_total as f64 / (calls as f64 + 5.0);
        let (mut fast, _) = build(depth);
        fast.enable_fast_path("act");
        let fast_us = time_calls(&mut fast, &x, calls);
        assert!(fast.is_contracted("act"));
        tsv_row(&[
            depth.to_string(),
            n_components.to_string(),
            format!("{:.1}", traced_us),
            format!("{:.1}", fast_us),
            format!("{:.1}", traced_us - fast_us),
            format!("{:.2}", traced_us / fast_us),
            format!("{:.1}", api_per_call),
        ]);
    }
    println!("# expected: the absolute saving (saved_us) grows with the component count —");
    println!("# contraction removes per-component dispatch — while the relative speedup");
    println!("# settles around the dispatch/kernel cost ratio.");
}
