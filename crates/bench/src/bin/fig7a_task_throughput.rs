//! Figure 7a: single-worker task throughput vs task size and env count —
//! a direct measurement (no simulation).
//!
//! Paper: "RLgraph is not only more effective on a single environment, it
//! also scales better on vectorized environments due to faster accounting
//! across environments and episodes" — the rlgraph RayWorker vs RLlib's
//! policy evaluator, same agent, same config.

use bench::{tsv_header, tsv_row};
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::{Backend, DqnConfig, EpsilonSchedule};
use rlgraph_baselines::RllibStyleWorker;
use rlgraph_envs::{Env, GridPong, GridPongConfig, VectorEnv};
use rlgraph_nn::{Activation, NetworkSpec};
use std::time::Instant;

fn agent_config() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        // vector-observation pong keeps the net small so call structure —
        // not matmul time — dominates, as in the paper's CPU workers
        network: NetworkSpec::mlp(&[64, 64], Activation::Tanh),
        memory_capacity: 64,
        batch_size: 8,
        n_step: 3,
        epsilon: EpsilonSchedule { start: 0.1, end: 0.1, decay_steps: 1 },
        seed: 5,
        ..DqnConfig::default()
    }
}

fn env(seed: u64) -> GridPong {
    GridPong::new(GridPongConfig::learnable(seed))
}

fn main() {
    println!("# Figure 7a: single worker throughput (env frames/s) vs task size and env count");
    tsv_header(&["task_size", "envs", "rlgraph_fps", "rllib_style_fps", "speedup"]);
    let runs = 3;
    for task_size in [200usize, 400, 800, 1600, 3200] {
        for n_envs in [1usize, 4, 8] {
            // rlgraph worker: batched act + batched post-processing
            let vec_env =
                VectorEnv::from_factory(n_envs, |i| Box::new(env(i as u64)) as Box<dyn Env>)
                    .expect("envs");
            let mut worker = ApexWorker::new(agent_config(), vec_env).expect("worker");
            worker.collect(task_size.min(200)).expect("warm-up");
            let t0 = Instant::now();
            let mut frames = 0u64;
            for _ in 0..runs {
                frames += worker.collect(task_size).expect("collect").env_frames;
            }
            let rlgraph_fps = frames as f64 / t0.elapsed().as_secs_f64();

            // RLlib-style evaluator: per-env acting, per-record post-processing
            let envs: Vec<Box<dyn Env>> =
                (0..n_envs).map(|i| Box::new(env(i as u64)) as Box<dyn Env>).collect();
            let mut evaluator = RllibStyleWorker::new(agent_config(), envs).expect("worker");
            evaluator.collect(task_size.min(200)).expect("warm-up");
            let t1 = Instant::now();
            let mut frames = 0u64;
            for _ in 0..runs {
                frames += evaluator.collect(task_size).expect("collect").env_frames;
            }
            let rllib_fps = frames as f64 / t1.elapsed().as_secs_f64();

            tsv_row(&[
                task_size.to_string(),
                n_envs.to_string(),
                format!("{:.0}", rlgraph_fps),
                format!("{:.0}", rllib_fps),
                format!("{:.2}", rlgraph_fps / rllib_fps.max(1e-9)),
            ]);
        }
    }
    println!(
        "# paper shape: rlgraph above rllib at every point, with the gap growing with env count"
    );
    println!("# (batched acting) and with larger tasks (batched vs per-record post-processing).");
}
