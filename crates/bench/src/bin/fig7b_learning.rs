//! Figure 7b: Pong learning curves — mean worker reward vs (virtual)
//! wall-clock for RLgraph vs the RLlib-style implementation.
//!
//! Both implementations run the identical Ape-X algorithm on the same
//! seeds; only their call structure differs, so — as in the paper — the
//! faster implementation reaches the same reward earlier in wall-clock.
//! Real training runs on one core; the virtual clock credits the worker
//! fleet's parallelism (32 workers) exactly as a cluster deployment would
//! (DESIGN.md §2).

use bench::{tsv_header, tsv_row};
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::{Backend, DqnAgent, DqnConfig, EpsilonSchedule};
use rlgraph_baselines::RllibStyleWorker;
use rlgraph_envs::{Env, GridPong, GridPongConfig, VectorEnv};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_sim::VirtualClock;
use std::time::Instant;

const VIRTUAL_WORKERS: usize = 32;
const TASK_SIZE: usize = 128;
const UPDATES_PER_TASK: usize = 16;
const VIRTUAL_BUDGET_S: f64 = 150.0;
const REAL_BUDGET_S: f64 = 300.0;

fn agent_config(seed: u64) -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[64, 64], Activation::Tanh),
        memory_capacity: 20_000,
        batch_size: 32,
        n_step: 3,
        target_sync_every: 100,
        epsilon: EpsilonSchedule { start: 1.0, end: 0.05, decay_steps: 15_000 },
        seed,
        ..DqnConfig::default()
    }
}

enum Collector {
    Rlgraph(ApexWorker),
    RllibStyle(RllibStyleWorker),
}

impl Collector {
    fn collect(&mut self, n: usize) -> rlgraph_agents::apex::WorkerBatch {
        match self {
            Collector::Rlgraph(w) => w.collect(n).expect("collect"),
            Collector::RllibStyle(w) => w.collect(n).expect("collect"),
        }
    }
    fn set_weights(&mut self, w: &[(String, rlgraph_tensor::Tensor)]) {
        match self {
            Collector::Rlgraph(x) => x.agent_mut().set_weights(w).expect("sync"),
            Collector::RllibStyle(x) => x.agent_mut().set_weights(w).expect("sync"),
        }
    }
}

fn run(label: &str, mut collector: Collector, seed: u64) -> Vec<(f64, f32)> {
    let e = GridPong::new(GridPongConfig::learnable(seed));
    let mut learner =
        DqnAgent::new(agent_config(seed), &e.state_space(), &e.action_space()).expect("learner");
    let mut clock = VirtualClock::new();
    let mut curve: Vec<(f64, f32)> = Vec::new();
    let mut recent_returns: Vec<f32> = Vec::new();
    let real_start = Instant::now();
    while clock.seconds() < VIRTUAL_BUDGET_S && real_start.elapsed().as_secs_f64() < REAL_BUDGET_S {
        // Workers collect in parallel across the fleet.
        let t0 = Instant::now();
        let batch = collector.collect(TASK_SIZE);
        let collect_dt = t0.elapsed().as_secs_f64();
        recent_returns.extend(batch.episode_returns.iter().copied());
        let [s, a, r, s2, t] =
            rlgraph_agents::components::memory::transitions_to_batch(&batch.transitions)
                .expect("batch");
        let p =
            rlgraph_tensor::Tensor::from_vec(batch.priorities.clone(), &[batch.priorities.len()])
                .expect("priorities");
        learner.observe_with_priorities(s, a, r, s2, t, p).expect("insert");
        // Learner runs concurrently with collection on its own node.
        let t1 = Instant::now();
        if learner.ready_to_update() {
            for _ in 0..UPDATES_PER_TASK {
                learner.update().expect("update");
            }
        }
        let update_dt = t1.elapsed().as_secs_f64();
        // Virtual time: the fleet collects in parallel; the learner
        // pipeline overlaps, so the slower of the two paces the system.
        let step_dt = (collect_dt / VIRTUAL_WORKERS as f64).max(update_dt);
        clock.charge(step_dt);
        collector.set_weights(&learner.get_weights());
        if recent_returns.len() > 200 {
            let cut = recent_returns.len() - 200;
            recent_returns.drain(..cut);
        }
        if !recent_returns.is_empty() {
            let mean = recent_returns.iter().sum::<f32>() / recent_returns.len() as f32;
            curve.push((clock.seconds(), mean));
        }
    }
    eprintln!(
        "# {}: {} points, final mean reward {:.2}, real time {:.0}s",
        label,
        curve.len(),
        curve.last().map(|(_, r)| *r).unwrap_or(f32::NAN),
        real_start.elapsed().as_secs_f64()
    );
    curve
}

fn main() {
    println!("# Figure 7b: Ape-X learning on GridPong (win at +5), mean recent worker reward");
    println!("# vs virtual wall-clock with {} parallel workers", VIRTUAL_WORKERS);
    let seed = 17;
    let vec_env = VectorEnv::from_factory(4, move |i| {
        Box::new(GridPong::new(GridPongConfig::learnable(seed * 100 + i as u64))) as Box<dyn Env>
    })
    .expect("envs");
    let rlgraph_curve = run(
        "rlgraph",
        Collector::Rlgraph(ApexWorker::new(agent_config(seed), vec_env).expect("worker")),
        seed,
    );
    let envs: Vec<Box<dyn Env>> = (0..4)
        .map(|i| {
            Box::new(GridPong::new(GridPongConfig::learnable(seed * 100 + i as u64)))
                as Box<dyn Env>
        })
        .collect();
    let rllib_curve = run(
        "rllib-style",
        Collector::RllibStyle(RllibStyleWorker::new(agent_config(seed), envs).expect("worker")),
        seed,
    );
    tsv_header(&["virtual_seconds", "impl", "mean_reward"]);
    for (t, r) in &rlgraph_curve {
        tsv_row(&[format!("{:.1}", t), "rlgraph".into(), format!("{:.3}", r)]);
    }
    for (t, r) in &rllib_curve {
        tsv_row(&[format!("{:.1}", t), "rllib_style".into(), format!("{:.3}", r)]);
    }
    // Headline: time to reach a reward threshold.
    let first_above =
        |curve: &[(f64, f32)], thr: f32| curve.iter().find(|(_, r)| *r >= thr).map(|(t, _)| *t);
    for thr in [-2.0f32, 0.0, 2.0] {
        let a = first_above(&rlgraph_curve, thr);
        let b = first_above(&rllib_curve, thr);
        println!(
            "# reward {:+.0}: rlgraph {}  rllib-style {}",
            thr,
            a.map(|t| format!("{:.1}s", t)).unwrap_or_else(|| "-".into()),
            b.map(|t| format!("{:.1}s", t)).unwrap_or_else(|| "-".into()),
        );
    }
    println!("# paper shape: the same algorithm implemented with rlgraph's batched calls");
    println!("# reaches each reward level earlier in wall-clock than the rllib-style calls.");
}
