//! Telemetry-plane overhead benchmark: the multi-worker Ape-X TCP
//! runtime with the recorder disabled vs fully enabled (spans, metric
//! shipping on heartbeats, clock-offset estimation, flight ring).
//!
//! Writes `BENCH_obs.json` at the repo root with:
//!
//! 1. **Throughput overhead** — learner updates/sec with telemetry off
//!    and on, medians over [`RUNS`] paired runs at the same update
//!    budget; the enabled run must stay within [`MAX_OVERHEAD`] of the
//!    disabled one. Disabled means *disabled*, not absent: every call
//!    site still runs, so this prices the one-branch-per-call contract.
//! 2. **Telemetry volume** — spans retained, snapshot folds, and the
//!    cluster registry's own wire cost (`net.svc.coord.bytes_rx`), so a
//!    regression in piggyback size shows up in review.
//!
//! `--smoke` runs one tiny pair, skips the overhead threshold (a loaded
//! CI box makes single-digit-percent wall-clock asserts flaky), writes
//! nothing — but still asserts the telemetry plane produced a cluster
//! report with the per-worker gauges and a merged multi-process trace.

use rlgraph_agents::{Backend, DqnConfig};
use rlgraph_net::{maybe_run_child, run_apex_net, EnvSpec, LaunchMode, NetApexConfig, Transport};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_obs::Recorder;
use std::time::Duration;

/// Telemetry-on may cost at most this fraction of telemetry-off
/// throughput (medians over [`RUNS`] paired runs).
const MAX_OVERHEAD: f64 = 0.05;

/// Paired runs per mode in full mode; medians tame scheduler noise.
const RUNS: usize = 5;

struct Budget {
    num_workers: usize,
    envs_per_worker: usize,
    task_size: usize,
    num_shards: usize,
    max_updates: u64,
    runs: usize,
}

const FULL: Budget = Budget {
    num_workers: 2,
    envs_per_worker: 2,
    task_size: 32,
    num_shards: 2,
    max_updates: 60,
    runs: RUNS,
};
const SMOKE: Budget = Budget {
    num_workers: 2,
    envs_per_worker: 2,
    task_size: 16,
    num_shards: 2,
    max_updates: 8,
    runs: 1,
};

fn agent_config() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[64], Activation::Tanh),
        memory_capacity: 8192,
        batch_size: 32,
        n_step: 3,
        target_sync_every: 100,
        seed: 7,
        ..DqnConfig::default()
    }
}

fn config(budget: &Budget, recorder: Recorder) -> NetApexConfig {
    NetApexConfig {
        agent: agent_config(),
        env: EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 },
        num_workers: budget.num_workers,
        envs_per_worker: budget.envs_per_worker,
        task_size: budget.task_size,
        num_shards: budget.num_shards,
        weight_sync_interval: 16,
        run_duration: Duration::from_secs(600),
        max_updates: Some(budget.max_updates),
        rpc_deadline: Duration::from_secs(10),
        // Thread mode keeps the pair comparable (no process fork noise)
        // while every byte still crosses the TCP wire codec and the
        // telemetry plane runs its full path: heartbeat piggybacks,
        // offset estimation, PUSH_TRACE, GET_TELEMETRY.
        launch: LaunchMode::Thread,
        shard_proxy: None,
        transport: Transport::default(),
        compression: false,
        elastic: None,
        recorder,
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    // Worker re-entry point, in case this binary is ever run in
    // process mode.
    maybe_run_child();

    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { &SMOKE } else { &FULL };
    println!(
        "obs bench: {} workers x {} envs, {} shards, {} updates x {} runs per mode{}",
        budget.num_workers,
        budget.envs_per_worker,
        budget.num_shards,
        budget.max_updates,
        budget.runs,
        if smoke { " (smoke)" } else { "" }
    );

    let mut off_ups = Vec::with_capacity(budget.runs);
    let mut on_ups = Vec::with_capacity(budget.runs);
    let mut last_report = None;
    let mut last_trace = None;
    let mut coord_rx = 0u64;
    let mut span_count = 0usize;
    // Interleave off/on pairs so drift (thermal, cache, background
    // load) hits both modes evenly.
    for run in 0..budget.runs {
        let off = run_apex_net(config(budget, Recorder::disabled())).expect("telemetry-off run");
        assert_eq!(off.updates, budget.max_updates);
        off_ups.push(off.updates as f64 / off.wall_time.as_secs_f64().max(1e-9));

        let recorder = Recorder::wall();
        let on = run_apex_net(config(budget, recorder.clone())).expect("telemetry-on run");
        assert_eq!(on.updates, budget.max_updates);
        on_ups.push(on.updates as f64 / on.wall_time.as_secs_f64().max(1e-9));
        coord_rx = recorder.counter("net.svc.coord.bytes_rx").value();
        span_count = recorder.event_count();
        last_report = on.telemetry_dump;
        last_trace = on.merged_trace;
        println!(
            "  pair {}: off {:.1} updates/s | on {:.1} updates/s",
            run, off_ups[run], on_ups[run]
        );
    }

    let off_med = median(&mut off_ups);
    let on_med = median(&mut on_ups);
    let overhead = (off_med - on_med) / off_med.max(1e-9);
    println!(
        "medians: off {:.1} updates/s, on {:.1} updates/s -> overhead {:.1}%",
        off_med,
        on_med,
        overhead * 100.0
    );
    println!(
        "telemetry volume: {} parent spans, coord heartbeat+telemetry rx {} bytes",
        span_count, coord_rx
    );

    // The enabled run must actually have produced the telemetry plane's
    // artifacts — a benchmark of a silently dead feature is worthless.
    let report = last_report.expect("telemetry-on run returned a cluster report");
    assert!(report.contains("worker-0"), "cluster report lost worker sections:\n{}", report);
    assert!(report.contains("worker.mailbox_depth"), "mailbox gauge missing:\n{}", report);
    assert!(report.contains("learner.update_rate"), "update-rate gauge missing:\n{}", report);
    let trace = last_trace.expect("telemetry-on run returned a merged trace");
    assert!(
        trace.contains("\"worker-0\"") && trace.contains("\"coordinator\""),
        "merged trace lost its process rows"
    );
    println!("telemetry artifacts present ✓");

    if smoke {
        println!("smoke mode: skipping overhead threshold and BENCH_obs.json");
        return;
    }

    assert!(
        overhead <= MAX_OVERHEAD,
        "telemetry costs {:.1}% throughput (budget {:.0}%)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!("overhead within {:.0}% budget ✓", MAX_OVERHEAD * 100.0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"budget\": {{\"workers\": {}, \"envs_per_worker\": {}, \"shards\": {}, ",
            "\"task_size\": {}, \"updates\": {}, \"runs\": {}}},\n",
            "  \"updates_per_s\": {{\"telemetry_off_median\": {}, \"telemetry_on_median\": {}}},\n",
            "  \"overhead\": {{\"fraction\": {}, \"budget\": {}}},\n",
            "  \"telemetry_volume\": {{\"parent_spans\": {}, \"coord_rx_bytes\": {}}}\n",
            "}}\n"
        ),
        budget.num_workers,
        budget.envs_per_worker,
        budget.num_shards,
        budget.task_size,
        budget.max_updates,
        budget.runs,
        json_f(off_med),
        json_f(on_med),
        json_f(overhead),
        json_f(MAX_OVERHEAD),
        span_count,
        coord_rx,
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
