//! Figure 5a: one-time build overhead of the component-graph abstraction.
//!
//! Paper: "The overhead for both build phases to build a single component
//! ... is less than 100 ms. For a common architecture (dueling DQN with
//! prioritized replay, 43 components), the combined overhead is about 1 s
//! for TF and 650 ms for PT" — with the PyTorch(-style) build cheaper
//! because define-by-run variables are plain arrays.
//!
//! Rows: architecture × backend, columns: trace (phase 2) and build
//! (phase 3) times plus component counts.

use bench::{ms, tsv_header, tsv_row};
use rlgraph_agents::components::memory::{shared_replay, PrioritizedReplayComponent};
use rlgraph_agents::dqn::{dqn_api_spaces, DqnRoot};
use rlgraph_agents::{Backend, DqnConfig};
use rlgraph_core::{BuildReport, ComponentGraphBuilder, ComponentStore};
use rlgraph_spaces::Space;
use std::time::Duration;

fn replay_component_store() -> (ComponentStore, rlgraph_core::ComponentId, Vec<(String, Vec<Space>)>)
{
    let mut store = ComponentStore::new();
    let comp =
        PrioritizedReplayComponent::new("prioritized-replay", shared_replay(1024, 0.6), 32, 0.4, 0);
    let id = store.add(comp);
    let s = Space::float_box(&[84]).with_batch_rank();
    let a = Space::int_box(6).with_batch_rank();
    let scalar_f = Space::float_box_bounded(&[], f32::MIN, f32::MAX).with_batch_rank();
    let api = vec![
        (
            "insert".to_string(),
            vec![s.clone(), a, scalar_f.clone(), s, Space::bool_box().with_batch_rank()],
        ),
        ("sample".to_string(), vec![]),
        (
            "update_priorities".to_string(),
            vec![Space::int_box(i64::MAX).with_batch_rank(), scalar_f],
        ),
    ];
    // A pass-through root exposing the memory's API.
    struct Root {
        child: rlgraph_core::ComponentId,
        methods: Vec<String>,
    }
    impl rlgraph_core::Component for Root {
        fn name(&self) -> &str {
            "memory-root"
        }
        fn api_methods(&self) -> Vec<String> {
            self.methods.clone()
        }
        fn call_api(
            &mut self,
            method: &str,
            ctx: &mut rlgraph_core::BuildCtx,
            _id: rlgraph_core::ComponentId,
            inputs: &[rlgraph_core::OpRef],
        ) -> rlgraph_core::Result<Vec<rlgraph_core::OpRef>> {
            ctx.call(self.child, method, inputs)
        }
        fn sub_components(&self) -> Vec<rlgraph_core::ComponentId> {
            vec![self.child]
        }
    }
    let methods: Vec<String> = api.iter().map(|(m, _)| m.clone()).collect();
    let root = store.add(Root { child: id, methods });
    (store, root, api)
}

fn dqn_store() -> (ComponentStore, rlgraph_core::ComponentId, Vec<(String, Vec<Space>)>) {
    // The paper's architecture class: dueling DQN with prioritized replay
    // over an Atari-scale conv stack.
    let config = DqnConfig {
        network: bench::pong_conv_network(),
        dueling: true,
        double: true,
        batch_size: 32,
        ..DqnConfig::default()
    };
    let mut store = ComponentStore::new();
    let root = DqnRoot::compose(&mut store, &config, 6);
    let root_id = store.add(root);
    let api = dqn_api_spaces(&Space::float_box(&[2, 16, 16]), &Space::int_box(6));
    (store, root_id, api)
}

/// A case constructor: component store, root id, and the API signature.
type MakeCase = fn() -> (ComponentStore, rlgraph_core::ComponentId, Vec<(String, Vec<Space>)>);

fn build_once(make: MakeCase, backend: Backend) -> BuildReport {
    let (store, root, api) = make();
    let mut builder = ComponentGraphBuilder::new(root).dummy_batch(32);
    for (m, s) in api {
        builder = builder.api_method(&m, s);
    }
    match backend {
        Backend::Static => builder.build_static(store).expect("build").1,
        Backend::DefineByRun => builder.build_dbr(store).expect("build").1,
    }
}

fn mean_report(make: MakeCase, backend: Backend, runs: usize) -> (Duration, Duration, BuildReport) {
    let mut trace = Duration::ZERO;
    let mut build = Duration::ZERO;
    let mut last = build_once(make, backend); // warm-up
    for _ in 0..runs {
        last = build_once(make, backend);
        trace += last.assemble_time;
        build += last.build_time;
    }
    (trace / runs as u32, build / runs as u32, last)
}

fn main() {
    println!("# Figure 5a: build overheads (trace = phase-2 assembly, build = phase-3)");
    tsv_header(&[
        "architecture",
        "backend",
        "trace_ms",
        "build_ms",
        "total_ms",
        "components",
        "nodes",
        "variables",
    ]);
    let runs = 10;
    let cases: [(&str, MakeCase); 2] =
        [("prioritized-replay", replay_component_store), ("dueling-dqn", dqn_store)];
    for (name, make) in cases {
        for (backend, label) in
            [(Backend::Static, "static"), (Backend::DefineByRun, "define-by-run")]
        {
            let (trace, build, report) = mean_report(make, backend, runs);
            tsv_row(&[
                name.to_string(),
                label.to_string(),
                ms(trace),
                ms(build),
                ms(trace + build),
                report.num_components.to_string(),
                report.num_nodes.to_string(),
                report.num_variables.to_string(),
            ]);
        }
    }
    println!("# paper shape: single component < 100 ms; full DQN ~1 s static / ~650 ms dbr;");
    println!("# the dbr build is cheaper because its variables are plain host arrays.");
}
