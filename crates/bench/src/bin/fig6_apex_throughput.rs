//! Figure 6: distributed Ape-X sample throughput vs worker count,
//! RLgraph vs the RLlib-style baseline.
//!
//! This machine has one CPU core, so 16–256 workers cannot run natively.
//! Per DESIGN.md §2, the harness **measures** each implementation's real
//! per-task costs here (collection-task time, shard insert, learner step),
//! then replays the paper's coordination pattern at scale on the
//! discrete-event simulator — relative shapes come from measured
//! mechanisms, not assumed numbers.
//!
//! Paper shape: RLgraph above RLlib at every worker count (+185% at 16
//! workers, +60% at 256), both flattening as shards/learner saturate.

use bench::{tsv_header, tsv_row};
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::{Backend, DqnAgent, DqnConfig, EpsilonSchedule};
use rlgraph_baselines::RllibStyleWorker;
use rlgraph_envs::{Env, GridPong, GridPongConfig, VectorEnv};
use rlgraph_memory::{PrioritizedReplay, Transition};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_sim::{simulate_apex, ApexSimParams};
use rlgraph_tensor::Tensor;
use std::time::Instant;

const ENVS_PER_WORKER: usize = 4;
const TASK_SIZE: usize = 200;
/// The paper's learner runs on a V100 GPU; this machine is one CPU core.
/// Dense f32 training steps are modelled as this much faster on the GPU —
/// the standard ballpark for small-batch V100-vs-single-core throughput
/// (documented substitution, DESIGN.md §2).
const GPU_SPEEDUP: f64 = 50.0;
/// Worker → shard sample traffic crosses the network through Ray's object
/// store in the paper's deployment; in-process channels skip that cost, so
/// shard service is charged the transfer time at this NIC bandwidth
/// (bytes/second; 10 Gbit/s, the GCP default class).
const NET_BANDWIDTH: f64 = 1.25e9;

fn agent_config() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::new(vec![
            rlgraph_nn::LayerSpec::Flatten,
            rlgraph_nn::LayerSpec::Dense { units: 128, activation: Activation::Tanh },
            rlgraph_nn::LayerSpec::Dense { units: 64, activation: Activation::Tanh },
        ]),
        memory_capacity: 2048,
        batch_size: 32,
        n_step: 3,
        epsilon: EpsilonSchedule { start: 0.2, end: 0.2, decay_steps: 1 },
        seed: 5,
        ..DqnConfig::default()
    }
}

fn env(seed: u64) -> GridPong {
    // Pixel observations: sample volume per transition matters for shard
    // saturation, as with the paper's Atari frame stacks.
    GridPong::new(GridPongConfig { seed, points_to_win: 1_000_000, ..Default::default() })
}

struct Calibration {
    task_time: f64,
    frames_per_task: f64,
    insert_time: f64,
    sample_time: f64,
    priority_update_time: f64,
    train_time: f64,
}

fn calibrate_rlgraph() -> Calibration {
    let vec_env =
        VectorEnv::from_factory(ENVS_PER_WORKER, |i| Box::new(env(i as u64)) as Box<dyn Env>)
            .expect("envs");
    let mut worker = ApexWorker::new(agent_config(), vec_env).expect("worker");
    worker.collect(TASK_SIZE).expect("warm-up");
    let runs = 5;
    let t0 = Instant::now();
    let mut frames = 0u64;
    for _ in 0..runs {
        frames += worker.collect(TASK_SIZE).expect("collect").env_frames;
    }
    let task_time = t0.elapsed().as_secs_f64() / runs as f64;
    let frames_per_task = frames as f64 / runs as f64;
    let (insert_time, sample_time, priority_update_time) = calibrate_shard();
    let train_time = calibrate_learner();
    Calibration {
        task_time,
        frames_per_task,
        insert_time,
        sample_time,
        priority_update_time,
        train_time,
    }
}

fn calibrate_rllib_style() -> Calibration {
    let envs: Vec<Box<dyn Env>> =
        (0..ENVS_PER_WORKER).map(|i| Box::new(env(i as u64)) as Box<dyn Env>).collect();
    let mut worker = RllibStyleWorker::new(agent_config(), envs).expect("worker");
    worker.collect(TASK_SIZE).expect("warm-up");
    let runs = 5;
    let t0 = Instant::now();
    let mut frames = 0u64;
    for _ in 0..runs {
        frames += worker.collect(TASK_SIZE).expect("collect").env_frames;
    }
    let task_time = t0.elapsed().as_secs_f64() / runs as f64;
    let frames_per_task = frames as f64 / runs as f64;
    // shards and learner are shared infrastructure: same costs
    let (insert_time, sample_time, priority_update_time) = calibrate_shard();
    let train_time = calibrate_learner();
    Calibration {
        task_time,
        frames_per_task,
        insert_time,
        sample_time,
        priority_update_time,
        train_time,
    }
}

/// Measures shard service times directly on the replay structure.
fn calibrate_shard() -> (f64, f64, f64) {
    use rand::SeedableRng;
    let mut mem: PrioritizedReplay<Transition> = PrioritizedReplay::new(4096, 0.6);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    // pixel-sized records, as shipped by the workers
    let tr = Transition::new(
        Tensor::zeros(&[2, 16, 16], rlgraph_tensor::DType::F32),
        Tensor::scalar_i64(0),
        1.0,
        Tensor::zeros(&[2, 16, 16], rlgraph_tensor::DType::F32),
        false,
    );
    let t0 = Instant::now();
    for _ in 0..TASK_SIZE * 4 {
        mem.insert_with_priority(tr.clone(), 1.0);
    }
    // one insert request covers a whole task batch; shard service also
    // carries the object-store transfer of the task's records
    let batch_bytes = TASK_SIZE * tr.size_bytes();
    let insert_time = t0.elapsed().as_secs_f64() / 4.0 + batch_bytes as f64 / NET_BANDWIDTH;
    let t1 = Instant::now();
    let reps = 50;
    for _ in 0..reps {
        let b = mem.sample(32, 0.4, &mut rng);
        std::hint::black_box(&b.indices);
    }
    let sample_time = t1.elapsed().as_secs_f64() / reps as f64;
    let t2 = Instant::now();
    for _ in 0..reps {
        mem.update_priorities(&[0, 1, 2, 3], &[1.0, 2.0, 0.5, 4.0]);
    }
    let priority_update_time = t2.elapsed().as_secs_f64() / reps as f64;
    (insert_time, sample_time, priority_update_time)
}

/// Measures the learner's update-from-batch step time.
fn calibrate_learner() -> f64 {
    use rand::SeedableRng;
    let e = env(0);
    let mut learner =
        DqnAgent::new(agent_config(), &e.state_space(), &e.action_space()).expect("learner");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut batch = move || {
        [
            Tensor::rand_uniform(&[32, 2, 16, 16], 0.0, 1.0, &mut rng),
            Tensor::rand_int(&[32], 0, 3, &mut rng),
            Tensor::rand_uniform(&[32], -1.0, 1.0, &mut rng),
            Tensor::rand_uniform(&[32, 2, 16, 16], 0.0, 1.0, &mut rng),
            Tensor::zeros(&[32], rlgraph_tensor::DType::Bool),
            Tensor::ones(&[32]),
        ]
    };
    learner.update_from_batch(batch()).expect("warm-up");
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        learner.update_from_batch(batch()).expect("update");
    }
    // GPU learner model (documented substitution)
    t0.elapsed().as_secs_f64() / reps as f64 / GPU_SPEEDUP
}

fn main() {
    let trace_path = bench::trace_arg();
    println!("# Figure 6: distributed Ape-X throughput (simulated cluster, measured costs)");
    println!("# calibrating rlgraph worker ...");
    let rlgraph = calibrate_rlgraph();
    println!("# calibrating rllib-style worker ...");
    let rllib = calibrate_rllib_style();
    println!(
        "# measured: rlgraph task {:.1} ms vs rllib-style {:.1} ms ({:.0} frames/task); learner step {:.2} ms",
        rlgraph.task_time * 1e3,
        rllib.task_time * 1e3,
        rlgraph.frames_per_task,
        rlgraph.train_time * 1e3
    );
    println!("# (learner step scaled by the documented {}x GPU model)", GPU_SPEEDUP);
    tsv_header(&["workers", "rlgraph_fps", "rllib_style_fps", "rlgraph_advantage_pct"]);
    for workers in [16usize, 32, 64, 128, 256] {
        let params = |c: &Calibration| ApexSimParams {
            num_workers: workers,
            frames_per_task: c.frames_per_task,
            task_time: c.task_time,
            insert_time: c.insert_time,
            sample_time: c.sample_time,
            priority_update_time: c.priority_update_time,
            train_time: c.train_time,
            num_shards: 4,
            max_shard_backlog: 0.25,
            learner_enabled: true,
            duration: 120.0,
        };
        let a = simulate_apex(&params(&rlgraph));
        let b = simulate_apex(&params(&rllib));
        tsv_row(&[
            workers.to_string(),
            format!("{:.0}", a.frames_per_second),
            format!("{:.0}", b.frames_per_second),
            format!("{:.0}", (a.frames_per_second / b.frames_per_second - 1.0) * 100.0),
        ]);
    }
    println!("# paper shape: rlgraph leads at every count (paper: +185% @16, +60% @256),");
    println!("# both curves flattening as shard/learner service saturates.");
    if let Some(path) = trace_path {
        // Chrome trace of a 16-worker simulated run with the measured
        // rlgraph costs, on the virtual clock (load in chrome://tracing).
        let params = ApexSimParams {
            num_workers: 16,
            frames_per_task: rlgraph.frames_per_task,
            task_time: rlgraph.task_time,
            insert_time: rlgraph.insert_time,
            sample_time: rlgraph.sample_time,
            priority_update_time: rlgraph.priority_update_time,
            train_time: rlgraph.train_time,
            num_shards: 4,
            max_shard_backlog: 0.25,
            learner_enabled: true,
            duration: 30.0,
        };
        let json = bench::apex_sim_chrome_trace(&params);
        std::fs::write(&path, json).expect("write trace file");
        println!("# wrote Chrome trace of the simulated 16-worker run to {}", path.display());
    }
}
