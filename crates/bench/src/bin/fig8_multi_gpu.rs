//! Figure 8: synchronous multi-GPU device strategy — Ape-X convergence
//! with 1 vs 2 (simulated) GPUs.
//!
//! The multi-tower strategy is built into the graph exactly as the paper
//! describes (the batch is split per tower, losses averaged — verified
//! numerically identical to the single graph in the agent tests). GPUs are
//! simulated: real training runs on one core while the virtual clock
//! charges `update_time / n_gpus + sync_overhead` for the data-parallel
//! update (DESIGN.md §2). Expected result, as in the paper: "the expected
//! speed-up in convergence".

use bench::{tsv_header, tsv_row};
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::{Backend, DqnAgent, DqnConfig, EpsilonSchedule};
use rlgraph_envs::{Env, GridPong, GridPongConfig, VectorEnv};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_sim::VirtualClock;
use std::time::Instant;

const TASK_SIZE: usize = 128;
const UPDATES_PER_TASK: usize = 24;
const VIRTUAL_BUDGET_S: f64 = 90.0;
const REAL_BUDGET_S: f64 = 300.0;
const GPU_SYNC_OVERHEAD_S: f64 = 0.0005;
const VIRTUAL_WORKERS: usize = 32;

fn agent_config(towers: usize, seed: u64) -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[64, 64], Activation::Tanh),
        memory_capacity: 20_000,
        // large batch so the update dominates, as in the paper's GPU regime
        batch_size: 128,
        n_step: 3,
        target_sync_every: 100,
        towers,
        epsilon: EpsilonSchedule { start: 1.0, end: 0.05, decay_steps: 15_000 },
        seed,
        ..DqnConfig::default()
    }
}

fn run(gpus: usize, seed: u64) -> Vec<(f64, f32)> {
    let e = GridPong::new(GridPongConfig::learnable(seed));
    let towers = gpus.max(1);
    let mut learner =
        DqnAgent::new(agent_config(towers, seed), &e.state_space(), &e.action_space())
            .expect("learner");
    let vec_env = VectorEnv::from_factory(4, move |i| {
        Box::new(GridPong::new(GridPongConfig::learnable(seed * 100 + i as u64))) as Box<dyn Env>
    })
    .expect("envs");
    let mut worker = ApexWorker::new(agent_config(1, seed), vec_env).expect("worker");
    let mut clock = VirtualClock::new();
    let mut curve = Vec::new();
    let mut recent: Vec<f32> = Vec::new();
    let real_start = Instant::now();
    while clock.seconds() < VIRTUAL_BUDGET_S && real_start.elapsed().as_secs_f64() < REAL_BUDGET_S {
        let t0 = Instant::now();
        let batch = worker.collect(TASK_SIZE).expect("collect");
        let collect_dt = t0.elapsed().as_secs_f64();
        recent.extend(batch.episode_returns.iter().copied());
        let [s, a, r, s2, t] =
            rlgraph_agents::components::memory::transitions_to_batch(&batch.transitions)
                .expect("batch");
        let p =
            rlgraph_tensor::Tensor::from_vec(batch.priorities.clone(), &[batch.priorities.len()])
                .expect("priorities");
        learner.observe_with_priorities(s, a, r, s2, t, p).expect("insert");
        let t1 = Instant::now();
        if learner.ready_to_update() {
            for _ in 0..UPDATES_PER_TASK {
                learner.update().expect("update");
            }
        }
        let update_dt = t1.elapsed().as_secs_f64();
        // The update is data-parallel over `gpus` towers; sampling is not.
        let mut update_clock = VirtualClock::new();
        update_clock.charge_parallel(
            update_dt,
            gpus.max(1),
            GPU_SYNC_OVERHEAD_S * UPDATES_PER_TASK as f64,
        );
        let step_dt = (collect_dt / VIRTUAL_WORKERS as f64).max(update_clock.seconds());
        clock.charge(step_dt);
        worker.agent_mut().set_weights(&learner.get_weights()).expect("sync");
        if recent.len() > 200 {
            let cut = recent.len() - 200;
            recent.drain(..cut);
        }
        if !recent.is_empty() {
            curve.push((clock.seconds(), recent.iter().sum::<f32>() / recent.len() as f32));
        }
    }
    eprintln!(
        "# {} gpu(s): final mean reward {:.2} at virtual {:.1}s (real {:.0}s)",
        gpus,
        curve.last().map(|(_, r)| *r).unwrap_or(f32::NAN),
        clock.seconds(),
        real_start.elapsed().as_secs_f64()
    );
    curve
}

fn main() {
    println!("# Figure 8: synchronous multi-GPU strategy, mean worker reward vs virtual time");
    let seed = 23;
    let single = run(1, seed);
    let multi = run(2, seed);
    tsv_header(&["virtual_seconds", "gpus", "mean_reward"]);
    for (t, r) in &single {
        tsv_row(&[format!("{:.1}", t), "1".into(), format!("{:.3}", r)]);
    }
    for (t, r) in &multi {
        tsv_row(&[format!("{:.1}", t), "2".into(), format!("{:.3}", r)]);
    }
    let first_above =
        |curve: &[(f64, f32)], thr: f32| curve.iter().find(|(_, r)| *r >= thr).map(|(t, _)| *t);
    for thr in [-2.0f32, 0.0, 2.0] {
        println!(
            "# reward {:+.0}: 1 gpu {}  2 gpus {}",
            thr,
            first_above(&single, thr).map(|t| format!("{:.1}s", t)).unwrap_or_else(|| "-".into()),
            first_above(&multi, thr).map(|t| format!("{:.1}s", t)).unwrap_or_else(|| "-".into()),
        );
    }
    println!("# paper shape: two towers halve the (update-dominated) step time, so the");
    println!("# 2-GPU curve reaches each reward level earlier in wall-clock.");
}
