//! Kernel engine benchmark: naive vs cache-blocked vs blocked+parallel
//! GEMM, and direct vs im2col convolution.
//!
//! GEMM sizes are the products that dominate the paper's evaluation
//! networks: the DQN MLP layers (batch 32, 64/64 hidden) and the larger
//! FC/im2col products of the IMPALA-style conv net, plus the canonical
//! 256^3 square. Writes `BENCH_kernels.json` at the repo root; `--smoke`
//! runs tiny shapes once and writes nothing (tier-1 uses it as a
//! does-it-run check).

use rlgraph_tensor::kernels::{conv, gemm, reference};
use rlgraph_tensor::{pool, Tensor};
use std::time::Instant;

struct GemmCase {
    label: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

const GEMM_CASES: &[GemmCase] = &[
    GemmCase { label: "dqn_mlp_in", m: 32, k: 128, n: 64 },
    GemmCase { label: "dqn_mlp_hidden", m: 32, k: 64, n: 64 },
    GemmCase { label: "impala_fc", m: 256, k: 1024, n: 256 },
    GemmCase { label: "square256", m: 256, k: 256, n: 256 },
    GemmCase { label: "square512", m: 512, k: 512, n: 512 },
];

const SMOKE_CASES: &[GemmCase] = &[GemmCase { label: "smoke", m: 48, k: 48, n: 48 }];

const THREAD_SWEEP: &[usize] = &[1, 2, 4];

/// Best (minimum) seconds per call over enough iterations to fill ~300ms —
/// the standard noise-rejecting estimator for short compute kernels, and
/// the same statistic `scripts/bench_seed_gemm.sh` reports.
fn time_it<F: FnMut()>(mut f: F, smoke: bool) -> f64 {
    f(); // warmup
    if smoke {
        let t = Instant::now();
        f();
        return t.elapsed().as_secs_f64();
    }
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64().max(1e-7);
    let iters = ((0.3 / once) as usize).clamp(5, 10_000);
    let mut best = f64::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn rng_tensor(shape: &[usize], seed: u64) -> Tensor {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cases = if smoke { SMOKE_CASES } else { GEMM_CASES };
    // Pre-engine baseline at 256^3, measured by scripts/bench_seed_gemm.sh
    // (the seed's loop built with the seed's flags — no -C target-cpu=native,
    // which this crate's .cargo/config.toml has since added and which also
    // speeds up the in-binary naive rows below).
    let seed_build_ms: Option<f64> =
        std::env::var("RLGRAPH_SEED_GEMM_MS").ok().and_then(|v| v.trim().parse().ok());

    let mut gemm_rows = Vec::new();
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>12} {:>12} {:>10} {:>8}",
        "case", "m", "k", "n", "naive_ms", "blocked_ms", "gflops", "speedup"
    );
    for c in cases {
        let a = rng_tensor(&[c.m, c.k], 1);
        let b = rng_tensor(&[c.k, c.n], 2);
        let flops = 2.0 * c.m as f64 * c.k as f64 * c.n as f64;

        pool::set_threads(Some(1));
        let naive_s = time_it(|| drop(reference::matmul(&a, &b).unwrap()), smoke);
        let mut blocked_s = Vec::new();
        for &t in THREAD_SWEEP {
            pool::set_threads(Some(t));
            blocked_s.push(time_it(|| drop(gemm::matmul_nn(&a, &b).unwrap()), smoke));
        }
        pool::set_threads(None);

        let speedup = naive_s / blocked_s[0];
        let gflops = flops / blocked_s[0] / 1e9;
        println!(
            "{:<16} {:>5} {:>5} {:>5} {:>12.3} {:>12.3} {:>10.2} {:>7.2}x",
            c.label,
            c.m,
            c.k,
            c.n,
            naive_s * 1e3,
            blocked_s[0] * 1e3,
            gflops,
            speedup
        );

        let threads_json: Vec<String> = THREAD_SWEEP
            .iter()
            .zip(&blocked_s)
            .map(|(t, s)| format!("\"{t}\": {}", json_f(s * 1e3)))
            .collect();
        let seed_fields = match seed_build_ms {
            Some(ms) if c.label == "square256" => format!(
                ", \"seed_build_naive_ms\": {}, \"speedup_vs_seed_build\": {}",
                json_f(ms),
                json_f(ms / (blocked_s[0] * 1e3))
            ),
            _ => String::new(),
        };
        gemm_rows.push(format!(
            concat!(
                "    {{\"label\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, ",
                "\"naive_ms\": {}, \"blocked_ms_by_threads\": {{{}}}, ",
                "\"speedup_blocked_1t_vs_naive\": {}, \"gflops_blocked_1t\": {}{}}}"
            ),
            c.label,
            c.m,
            c.k,
            c.n,
            json_f(naive_s * 1e3),
            threads_json.join(", "),
            json_f(speedup),
            json_f(gflops),
            seed_fields,
        ));
    }

    // conv: one IMPALA-style mid layer, direct loops vs im2col+GEMM
    let (cx, cf, stride, padding) = if smoke {
        (rng_tensor(&[1, 4, 8, 8], 3), rng_tensor(&[4, 4, 3, 3], 4), 1, 1)
    } else {
        (rng_tensor(&[8, 32, 20, 20], 3), rng_tensor(&[32, 32, 3, 3], 4), 1, 1)
    };
    pool::set_threads(Some(1));
    let direct_s = time_it(|| drop(reference::conv2d(&cx, &cf, stride, padding).unwrap()), smoke);
    let mut im2col_s = Vec::new();
    for &t in THREAD_SWEEP {
        pool::set_threads(Some(t));
        im2col_s
            .push(time_it(|| drop(conv::conv2d_im2col(&cx, &cf, stride, padding).unwrap()), smoke));
    }
    pool::set_threads(None);
    println!(
        "conv2d {:?}*{:?}: direct {:.3} ms, im2col(1t) {:.3} ms ({:.2}x)",
        cx.shape(),
        cf.shape(),
        direct_s * 1e3,
        im2col_s[0] * 1e3,
        direct_s / im2col_s[0]
    );

    if smoke {
        println!("smoke mode: skipping BENCH_kernels.json");
        return;
    }

    let conv_threads_json: Vec<String> = THREAD_SWEEP
        .iter()
        .zip(&im2col_s)
        .map(|(t, s)| format!("\"{t}\": {}", json_f(s * 1e3)))
        .collect();
    let seed_note = if seed_build_ms.is_some() {
        concat!(
            "  \"seed_baseline_note\": \"seed_build_naive_ms is the seed's naive loop ",
            "built with the seed's flags (scripts/bench_seed_gemm.sh); naive_ms rows ",
            "share this build's -C target-cpu=native and are faster than what the ",
            "seed shipped\",\n"
        )
    } else {
        ""
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"host_available_threads\": {},\n",
            "{}",
            "  \"gemm\": [\n{}\n  ],\n",
            "  \"conv2d\": {{\"input\": {:?}, \"filters\": {:?}, \"stride\": {}, \"padding\": {}, ",
            "\"direct_ms\": {}, \"im2col_ms_by_threads\": {{{}}}, ",
            "\"speedup_im2col_1t_vs_direct\": {}}}\n",
            "}}\n"
        ),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        seed_note,
        gemm_rows.join(",\n"),
        cx.shape(),
        cf.shape(),
        stride,
        padding,
        json_f(direct_s * 1e3),
        conv_threads_json.join(", "),
        json_f(direct_s / im2col_s[0]),
    );
    std::fs::write("BENCH_kernels.json", json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
