//! Network transport benchmark: Ape-X across real OS processes on
//! localhost TCP against the in-process threaded executor at the same
//! learner-update budget, plus policy-serving latency through the TCP
//! front-end vs the direct in-process client.
//!
//! Writes `BENCH_net.json` at the repo root with:
//!
//! 1. **Training throughput** — learner updates/sec for the in-process
//!    baseline and the multi-process TCP run; the TCP run must stay
//!    within [`MAX_SLOWDOWN`]× of the baseline (every replay batch,
//!    priority update and weight snapshot crosses the wire codec).
//! 2. **Serving latency** — p50/p99 act latency through
//!    `ServeTcpFrontend`/`NetPolicyClient` vs the direct `PolicyClient`
//!    against the identical replica fleet.
//! 3. **Wire accounting** — bytes tx/rx and reconnects from the
//!    recorder, so a regression in frame overhead shows up in review.
//!
//! `--smoke` keeps the real ≥2-OS-process run (tiny budget), skips the
//! slowdown threshold, and writes nothing — tier-1 uses it as a
//! does-it-run gate for the whole process-launch + RPC + codec path.

use rlgraph_agents::{Backend, DqnConfig};
use rlgraph_dist::{run_apex, ApexRunConfig};
use rlgraph_envs::{Env, RandomEnv};
use rlgraph_net::{
    maybe_run_child, run_apex_net, EnvSpec, LaunchMode, NetApexConfig, NetPolicyClient,
    ServeTcpFrontend, Transport,
};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_obs::Recorder;
use rlgraph_serve::{greedy_policy_replica, PolicyServer, ServeConfig};
use rlgraph_spaces::Space;
use rlgraph_tensor::Tensor;
use std::time::{Duration, Instant};

/// The TCP multi-process run may be at most this many times slower than
/// the in-process executor at the same update budget.
const MAX_SLOWDOWN: f64 = 2.5;

struct Budget {
    num_workers: usize,
    envs_per_worker: usize,
    task_size: usize,
    num_shards: usize,
    /// wall-clock window for the in-process baseline; the updates it
    /// achieves become the TCP run's exact step budget
    baseline_secs: f64,
    /// smoke caps the TCP run's update budget to stay a quick gate
    max_target: u64,
    serve_requests: usize,
}

const FULL: Budget = Budget {
    num_workers: 2,
    envs_per_worker: 2,
    task_size: 32,
    num_shards: 2,
    baseline_secs: 10.0,
    max_target: u64::MAX,
    serve_requests: 300,
};
const SMOKE: Budget = Budget {
    num_workers: 2,
    envs_per_worker: 2,
    task_size: 16,
    num_shards: 2,
    baseline_secs: 1.5,
    max_target: 10,
    serve_requests: 20,
};

fn agent_config() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[64], Activation::Tanh),
        memory_capacity: 8192,
        batch_size: 32,
        n_step: 3,
        target_sync_every: 100,
        seed: 7,
        ..DqnConfig::default()
    }
}

/// Baseline config: time-boxed, uncapped. `run_apex` deliberately
/// drains its whole `run_duration` even once a cap is hit, so the
/// honest baseline measurement is updates-achieved-per-wall-window.
fn inproc_config(budget: &Budget) -> ApexRunConfig {
    ApexRunConfig {
        agent: agent_config(),
        num_workers: budget.num_workers,
        envs_per_worker: budget.envs_per_worker,
        task_size: budget.task_size,
        num_shards: budget.num_shards,
        weight_sync_interval: 16,
        run_duration: Duration::from_secs_f64(budget.baseline_secs),
        max_updates: None,
        ..ApexRunConfig::default()
    }
}

/// TCP run config: capped at the baseline's achieved update count
/// (equal step budget); `run_apex_net` returns as soon as the cap is
/// hit, so its wall time is the time-to-complete measurement.
fn net_config(
    budget: &Budget,
    target_updates: u64,
    transport: Transport,
    recorder: Recorder,
) -> NetApexConfig {
    NetApexConfig {
        agent: agent_config(),
        env: EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 },
        num_workers: budget.num_workers,
        envs_per_worker: budget.envs_per_worker,
        task_size: budget.task_size,
        num_shards: budget.num_shards,
        weight_sync_interval: 16,
        run_duration: Duration::from_secs(600),
        max_updates: Some(target_updates),
        rpc_deadline: Duration::from_secs(10),
        launch: LaunchMode::Process,
        shard_proxy: None,
        transport,
        recorder,
    }
}

/// p-th percentile (0..=100) of raw latency samples.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() - 1) as f64 * p / 100.0).round() as usize;
    samples[idx]
}

struct ServeLatency {
    direct_p50_us: f64,
    direct_p99_us: f64,
    tcp_p50_us: f64,
    tcp_p99_us: f64,
}

/// Drives the same replica fleet through the direct in-process client
/// and through the TCP front-end, returning client-observed latency.
fn serve_latency(requests: usize, recorder: &Recorder) -> ServeLatency {
    const OBS_DIM: usize = 16;
    let space = Space::float_box_bounded(&[OBS_DIM], -1.0, 1.0);
    let network = NetworkSpec::mlp(&[32], Activation::Tanh);
    let space2 = space.clone();
    let server = PolicyServer::spawn(
        ServeConfig {
            num_replicas: 1,
            max_batch: 8,
            max_delay: Duration::from_micros(200),
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        space,
        recorder.clone(),
        move |_| Ok(Box::new(greedy_policy_replica(&network, &space2, 4, false, 7)?)),
    )
    .expect("spawn policy server");
    let frontend =
        ServeTcpFrontend::spawn(server.client(), recorder.clone()).expect("spawn TCP front-end");
    let mut tcp_client =
        NetPolicyClient::connect(frontend.addr(), recorder).expect("connect TCP client");
    let direct_client = server.client();

    let obs = |i: usize| {
        Tensor::from_vec(
            (0..OBS_DIM).map(|j| ((i * OBS_DIM + j) as f32 * 0.13).sin()).collect::<Vec<f32>>(),
            &[OBS_DIM],
        )
        .expect("observation")
    };
    let mut direct = Vec::with_capacity(requests);
    for i in 0..requests {
        let t0 = Instant::now();
        direct_client.act(obs(i)).expect("direct act");
        direct.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let mut tcp = Vec::with_capacity(requests);
    for i in 0..requests {
        let t0 = Instant::now();
        let action = tcp_client.act(&obs(i)).expect("tcp act");
        assert!(!action.shape().contains(&0), "empty action tensor over TCP");
        tcp.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    frontend.shutdown();
    ServeLatency {
        direct_p50_us: percentile(&mut direct, 50.0),
        direct_p99_us: percentile(&mut direct, 99.0),
        tcp_p50_us: percentile(&mut tcp, 50.0),
        tcp_p99_us: percentile(&mut tcp, 99.0),
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    // Worker re-entry point: when the runtime re-invokes this binary
    // with a worker spec in the environment, run the worker and exit.
    maybe_run_child();

    let smoke = std::env::args().any(|a| a == "--smoke");
    // `--reactor` fronts the shards and coordinator with the epoll mux
    // server instead of thread-per-connection; same wire, same clients.
    let transport = if std::env::args().any(|a| a == "--reactor") {
        Transport::Reactor
    } else {
        Transport::Blocking
    };
    let budget = if smoke { &SMOKE } else { &FULL };
    println!(
        "net bench: {} workers x {} envs, {} shards, {:.1}s baseline window, {:?} transport{}",
        budget.num_workers,
        budget.envs_per_worker,
        budget.num_shards,
        budget.baseline_secs,
        transport,
        if smoke { " (smoke)" } else { "" }
    );

    let recorder = Recorder::wall();

    // In-process baseline: threads + channels, no sockets.
    let base = run_apex(inproc_config(budget), |w, e| -> Box<dyn Env> {
        Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64))
    })
    .expect("in-process run");
    let base_ups = base.updates as f64 / base.wall_time.as_secs_f64().max(1e-9);
    println!(
        "in-process: {} updates in {:.2}s ({:.1} updates/s, {} frames)",
        base.updates,
        base.wall_time.as_secs_f64(),
        base_ups,
        base.env_frames
    );
    assert!(base.updates > 0, "baseline learner never updated");
    let target_updates = base.updates.min(budget.max_target);

    // Multi-process run: every worker is a real OS process, every
    // replay/weight byte crosses the TCP wire codec, at the baseline's
    // achieved update budget.
    let net = run_apex_net(net_config(budget, target_updates, transport, recorder.clone()))
        .expect("multi-process run");
    assert_eq!(net.updates, target_updates, "TCP run must hit the full update budget");
    assert_eq!(net.workers_clean, budget.num_workers, "every worker process must exit cleanly");
    assert!(net.losses.iter().all(|l| l.is_finite()), "non-finite loss over TCP");
    let net_ups = net.updates as f64 / net.wall_time.as_secs_f64().max(1e-9);
    let slowdown = base_ups / net_ups.max(1e-9);
    println!(
        "tcp multi-process: {} updates in {:.2}s ({:.1} updates/s, {} frames, {} heartbeats)",
        net.updates,
        net.wall_time.as_secs_f64(),
        net_ups,
        net.env_frames,
        net.heartbeats
    );
    println!(
        "slowdown vs in-process: {:.2}x (bytes tx {} rx {}, reconnects {})",
        slowdown,
        recorder.counter("net.bytes_tx").value(),
        recorder.counter("net.bytes_rx").value(),
        recorder.counter("net.reconnects").value()
    );
    if !smoke {
        assert!(
            slowdown <= MAX_SLOWDOWN,
            "TCP run is {slowdown:.2}x slower than in-process (budget {MAX_SLOWDOWN}x)"
        );
        println!("throughput: within {MAX_SLOWDOWN}x of in-process ✓");
    }

    let serve = serve_latency(budget.serve_requests, &recorder);
    println!(
        "serve latency: direct p50 {:.0}us p99 {:.0}us | tcp p50 {:.0}us p99 {:.0}us",
        serve.direct_p50_us, serve.direct_p99_us, serve.tcp_p50_us, serve.tcp_p99_us
    );

    if smoke {
        println!("smoke mode: skipping BENCH_net.json");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"budget\": {{\"workers\": {}, \"envs_per_worker\": {}, \"shards\": {}, ",
            "\"task_size\": {}, \"baseline_secs\": {}, \"target_updates\": {}}},\n",
            "  \"in_process\": {{\"updates\": {}, \"wall_s\": {}, \"updates_per_s\": {}, ",
            "\"env_frames\": {}}},\n",
            "  \"tcp_multi_process\": {{\"updates\": {}, \"wall_s\": {}, \"updates_per_s\": {}, ",
            "\"env_frames\": {}, \"heartbeats\": {}, \"workers_clean\": {}, ",
            "\"shard_watermarks\": {:?}}},\n",
            "  \"slowdown\": {{\"ratio\": {}, \"budget\": {}}},\n",
            "  \"wire\": {{\"bytes_tx\": {}, \"bytes_rx\": {}, \"reconnects\": {}}},\n",
            "  \"serve_latency_us\": {{\"direct_p50\": {}, \"direct_p99\": {}, ",
            "\"tcp_p50\": {}, \"tcp_p99\": {}}}\n",
            "}}\n"
        ),
        budget.num_workers,
        budget.envs_per_worker,
        budget.num_shards,
        budget.task_size,
        json_f(budget.baseline_secs),
        target_updates,
        base.updates,
        json_f(base.wall_time.as_secs_f64()),
        json_f(base_ups),
        base.env_frames,
        net.updates,
        json_f(net.wall_time.as_secs_f64()),
        json_f(net_ups),
        net.env_frames,
        net.heartbeats,
        net.workers_clean,
        net.shard_watermarks,
        json_f(slowdown),
        MAX_SLOWDOWN,
        recorder.counter("net.bytes_tx").value(),
        recorder.counter("net.bytes_rx").value(),
        recorder.counter("net.reconnects").value(),
        json_f(serve.direct_p50_us),
        json_f(serve.direct_p99_us),
        json_f(serve.tcp_p50_us),
        json_f(serve.tcp_p99_us),
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
}
