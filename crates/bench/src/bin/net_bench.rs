//! Network transport benchmark: Ape-X across real OS processes on
//! localhost TCP against the in-process threaded executor at the same
//! learner-update budget, plus policy-serving latency through the TCP
//! front-end vs the direct in-process client.
//!
//! Writes `BENCH_net.json` at the repo root with:
//!
//! 1. **Training throughput** — learner updates/sec for the in-process
//!    baseline and the multi-process TCP run; the TCP run must stay
//!    within [`MAX_SLOWDOWN`]× of the baseline (every replay batch,
//!    priority update and weight snapshot crosses the wire codec).
//! 2. **Wire compression** (DESIGN.md §14) — the same TCP run again
//!    with the v2 codec on (f16 weights + delta sync, i8 state
//!    columns, columnar trajectories, LZ frames): bytes tx/rx off vs on,
//!    updates/s, and mean episode return, at the identical update
//!    budget — return must agree within noise.
//! 3. **Serving latency** — p50/p99 act latency through
//!    `ServeTcpFrontend`/`NetPolicyClient` vs the direct `PolicyClient`
//!    against the identical replica fleet.
//!
//! `--smoke` keeps the real ≥2-OS-process run (tiny budget, with the
//! compressed codec on so the whole negotiate + quantize + delta path
//! runs), skips the slowdown threshold, and writes nothing — tier-1
//! uses it as a does-it-run gate for process launch + RPC + codec.

use rlgraph_agents::{Backend, DqnConfig};
use rlgraph_dist::{run_apex, ApexRunConfig};
use rlgraph_envs::{Env, RandomEnv};
use rlgraph_net::{
    maybe_run_child, run_apex_net, EnvSpec, LaunchMode, NetApexConfig, NetPolicyClient,
    ServeTcpFrontend, Transport,
};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_obs::Recorder;
use rlgraph_serve::{greedy_policy_replica, PolicyServer, ServeConfig};
use rlgraph_spaces::Space;
use rlgraph_tensor::Tensor;
use std::time::{Duration, Instant};

/// The TCP multi-process run may be at most this many times slower than
/// the in-process executor at the same update budget.
const MAX_SLOWDOWN: f64 = 2.5;

/// Observation dimensionality for the training runs (both arms). Sized
/// so state payloads dominate the wire like they do in real Ape-X
/// deployments (84x84x4 frames), rather than the per-transition fixed
/// overhead. The observations are uniform random floats — the
/// adversarial case for the LZ stage, so the measured reduction is the
/// quantization floor, not a best case.
const TRAIN_OBS_DIM: usize = 64;

struct Budget {
    num_workers: usize,
    envs_per_worker: usize,
    task_size: usize,
    num_shards: usize,
    /// wall-clock window for the in-process baseline; the updates it
    /// achieves become the TCP run's exact step budget
    baseline_secs: f64,
    /// smoke caps the TCP run's update budget to stay a quick gate
    max_target: u64,
    serve_requests: usize,
}

const FULL: Budget = Budget {
    num_workers: 2,
    envs_per_worker: 2,
    task_size: 32,
    num_shards: 2,
    baseline_secs: 10.0,
    max_target: u64::MAX,
    serve_requests: 300,
};
const SMOKE: Budget = Budget {
    num_workers: 2,
    envs_per_worker: 2,
    task_size: 16,
    num_shards: 2,
    baseline_secs: 1.5,
    max_target: 10,
    serve_requests: 20,
};

fn agent_config() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[64], Activation::Tanh),
        memory_capacity: 8192,
        batch_size: 32,
        n_step: 3,
        target_sync_every: 100,
        seed: 7,
        ..DqnConfig::default()
    }
}

/// Baseline config: time-boxed, uncapped. `run_apex` deliberately
/// drains its whole `run_duration` even once a cap is hit, so the
/// honest baseline measurement is updates-achieved-per-wall-window.
fn inproc_config(budget: &Budget) -> ApexRunConfig {
    ApexRunConfig {
        agent: agent_config(),
        num_workers: budget.num_workers,
        envs_per_worker: budget.envs_per_worker,
        task_size: budget.task_size,
        num_shards: budget.num_shards,
        weight_sync_interval: 16,
        run_duration: Duration::from_secs_f64(budget.baseline_secs),
        max_updates: None,
        ..ApexRunConfig::default()
    }
}

/// TCP run config: capped at the baseline's achieved update count
/// (equal step budget); `run_apex_net` returns as soon as the cap is
/// hit, so its wall time is the time-to-complete measurement.
fn net_config(
    budget: &Budget,
    target_updates: u64,
    transport: Transport,
    recorder: Recorder,
    compression: bool,
) -> NetApexConfig {
    NetApexConfig {
        agent: agent_config(),
        env: EnvSpec::Random { shape: vec![TRAIN_OBS_DIM], actions: 2, episode_len: 20 },
        num_workers: budget.num_workers,
        envs_per_worker: budget.envs_per_worker,
        task_size: budget.task_size,
        num_shards: budget.num_shards,
        weight_sync_interval: 16,
        run_duration: Duration::from_secs(600),
        max_updates: Some(target_updates),
        rpc_deadline: Duration::from_secs(10),
        launch: LaunchMode::Process,
        shard_proxy: None,
        transport,
        compression,
        elastic: None,
        recorder,
    }
}

/// Mean episode return (0 when no episode finished).
fn mean_return(returns: &[f32]) -> f64 {
    if returns.is_empty() {
        return 0.0;
    }
    returns.iter().map(|&r| r as f64).sum::<f64>() / returns.len() as f64
}

/// p-th percentile (0..=100) of raw latency samples.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() - 1) as f64 * p / 100.0).round() as usize;
    samples[idx]
}

struct ServeLatency {
    direct_p50_us: f64,
    direct_p99_us: f64,
    tcp_p50_us: f64,
    tcp_p99_us: f64,
}

/// Drives the same replica fleet through the direct in-process client
/// and through the TCP front-end, returning client-observed latency.
fn serve_latency(requests: usize, recorder: &Recorder) -> ServeLatency {
    const OBS_DIM: usize = 16;
    let space = Space::float_box_bounded(&[OBS_DIM], -1.0, 1.0);
    let network = NetworkSpec::mlp(&[32], Activation::Tanh);
    let space2 = space.clone();
    let server = PolicyServer::spawn(
        ServeConfig {
            num_replicas: 1,
            max_batch: 8,
            max_delay: Duration::from_micros(200),
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        space,
        recorder.clone(),
        move |_| Ok(Box::new(greedy_policy_replica(&network, &space2, 4, false, 7)?)),
    )
    .expect("spawn policy server");
    let frontend =
        ServeTcpFrontend::spawn(server.client(), recorder.clone()).expect("spawn TCP front-end");
    let mut tcp_client =
        NetPolicyClient::connect(frontend.addr(), recorder).expect("connect TCP client");
    let direct_client = server.client();

    let obs = |i: usize| {
        Tensor::from_vec(
            (0..OBS_DIM).map(|j| ((i * OBS_DIM + j) as f32 * 0.13).sin()).collect::<Vec<f32>>(),
            &[OBS_DIM],
        )
        .expect("observation")
    };
    let mut direct = Vec::with_capacity(requests);
    for i in 0..requests {
        let t0 = Instant::now();
        direct_client.act(obs(i)).expect("direct act");
        direct.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let mut tcp = Vec::with_capacity(requests);
    for i in 0..requests {
        let t0 = Instant::now();
        let action = tcp_client.act(&obs(i)).expect("tcp act");
        assert!(!action.shape().contains(&0), "empty action tensor over TCP");
        tcp.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    frontend.shutdown();
    ServeLatency {
        direct_p50_us: percentile(&mut direct, 50.0),
        direct_p99_us: percentile(&mut direct, 99.0),
        tcp_p50_us: percentile(&mut tcp, 50.0),
        tcp_p99_us: percentile(&mut tcp, 99.0),
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    // Worker re-entry point: when the runtime re-invokes this binary
    // with a worker spec in the environment, run the worker and exit.
    maybe_run_child();

    let smoke = std::env::args().any(|a| a == "--smoke");
    // `--reactor` fronts the shards and coordinator with the epoll mux
    // server instead of thread-per-connection; same wire, same clients.
    let transport = if std::env::args().any(|a| a == "--reactor") {
        Transport::Reactor
    } else {
        Transport::Blocking
    };
    let budget = if smoke { &SMOKE } else { &FULL };
    println!(
        "net bench: {} workers x {} envs, {} shards, {:.1}s baseline window, {:?} transport{}",
        budget.num_workers,
        budget.envs_per_worker,
        budget.num_shards,
        budget.baseline_secs,
        transport,
        if smoke { " (smoke)" } else { "" }
    );

    let recorder = Recorder::wall();

    // In-process baseline: threads + channels, no sockets.
    let base = run_apex(inproc_config(budget), |w, e| -> Box<dyn Env> {
        Box::new(RandomEnv::new(&[TRAIN_OBS_DIM], 2, 20, (w * 10 + e) as u64))
    })
    .expect("in-process run");
    let base_ups = base.updates as f64 / base.wall_time.as_secs_f64().max(1e-9);
    println!(
        "in-process: {} updates in {:.2}s ({:.1} updates/s, {} frames)",
        base.updates,
        base.wall_time.as_secs_f64(),
        base_ups,
        base.env_frames
    );
    assert!(base.updates > 0, "baseline learner never updated");
    let target_updates = base.updates.min(budget.max_target);

    // Multi-process runs: every worker is a real OS process, every
    // replay/weight byte crosses the TCP wire, at the baseline's
    // achieved update budget -- once plain v1, once under the v2
    // compressed codec. Each run gets a fresh recorder so the wire
    // byte counters attribute to exactly one run.
    let run_tcp = |compression: bool| {
        let rec = Recorder::wall();
        let stats =
            run_apex_net(net_config(budget, target_updates, transport, rec.clone(), compression))
                .expect("multi-process run");
        assert_eq!(stats.updates, target_updates, "TCP run must hit the full update budget");
        assert_eq!(
            stats.workers_clean, budget.num_workers,
            "every worker process must exit cleanly"
        );
        assert!(stats.losses.iter().all(|l| l.is_finite()), "non-finite loss over TCP");
        let ups = stats.updates as f64 / stats.wall_time.as_secs_f64().max(1e-9);
        let (tx, rx) = (rec.counter("net.bytes_tx").value(), rec.counter("net.bytes_rx").value());
        println!(
            "tcp {}: {} updates in {:.2}s ({:.1} updates/s, slowdown {:.2}x, bytes tx {} rx {}, \
             mean return {:.2}, reconnects {})",
            if compression { "compressed" } else { "plain" },
            stats.updates,
            stats.wall_time.as_secs_f64(),
            ups,
            base_ups / ups.max(1e-9),
            tx,
            rx,
            mean_return(&stats.returns),
            rec.counter("net.reconnects").value(),
        );
        (stats, ups, tx, rx, rec)
    };

    if smoke {
        // One run with the codec on: exercises process launch, frame
        // negotiation on both stacks, and the quantize/delta/columnar
        // encode-decode path end to end.
        let _ = run_tcp(true);
        let serve = serve_latency(budget.serve_requests, &recorder);
        println!(
            "serve latency: direct p50 {:.0}us p99 {:.0}us | tcp p50 {:.0}us p99 {:.0}us",
            serve.direct_p50_us, serve.direct_p99_us, serve.tcp_p50_us, serve.tcp_p99_us
        );
        println!("smoke mode: skipping BENCH_net.json");
        return;
    }

    // Alternate the arms over several rounds and keep each arm's best
    // round (highest updates/s). A single pass per arm is hostage to
    // scheduler noise on a shared box, and always running compressed
    // second would eat any within-pass degradation; alternation +
    // best-of removes both the variance and the order bias. Wire bytes
    // come from the kept round (they vary by well under 1% between
    // rounds).
    const TCP_ROUNDS: usize = 3;
    println!("tcp round 1/{}:", TCP_ROUNDS);
    let mut best_plain = run_tcp(false);
    let mut best_comp = run_tcp(true);
    for round in 1..TCP_ROUNDS {
        println!("tcp round {}/{}:", round + 1, TCP_ROUNDS);
        let p = run_tcp(false);
        if p.1 > best_plain.1 {
            best_plain = p;
        }
        let c = run_tcp(true);
        if c.1 > best_comp.1 {
            best_comp = c;
        }
    }
    let (net_plain, plain_ups, plain_tx, plain_rx, plain_rec) = best_plain;
    let (net_comp, comp_ups, comp_tx, comp_rx, comp_rec) = best_comp;
    let slowdown_plain = base_ups / plain_ups.max(1e-9);
    let slowdown_comp = base_ups / comp_ups.max(1e-9);
    assert!(
        slowdown_comp <= MAX_SLOWDOWN,
        "compressed TCP run is {slowdown_comp:.2}x slower than in-process (budget {MAX_SLOWDOWN}x)"
    );
    let reduction_tx = plain_tx as f64 / (comp_tx.max(1)) as f64;
    let reduction_rx = plain_rx as f64 / (comp_rx.max(1)) as f64;
    let reduction_total = (plain_tx + plain_rx) as f64 / ((comp_tx + comp_rx).max(1)) as f64;
    println!(
        "wire reduction: {:.2}x tx, {:.2}x rx, {:.2}x total; slowdown {:.2}x -> {:.2}x",
        reduction_tx, reduction_rx, reduction_total, slowdown_plain, slowdown_comp
    );

    let serve = serve_latency(budget.serve_requests, &recorder);
    println!(
        "serve latency: direct p50 {:.0}us p99 {:.0}us | tcp p50 {:.0}us p99 {:.0}us",
        serve.direct_p50_us, serve.direct_p99_us, serve.tcp_p50_us, serve.tcp_p99_us
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"budget\": {{\"workers\": {}, \"envs_per_worker\": {}, \"shards\": {}, ",
            "\"task_size\": {}, \"baseline_secs\": {}, \"target_updates\": {}}},\n",
            "  \"in_process\": {{\"updates\": {}, \"wall_s\": {}, \"updates_per_s\": {}, ",
            "\"env_frames\": {}}},\n",
            "  \"tcp_multi_process\": {{\"updates\": {}, \"wall_s\": {}, \"updates_per_s\": {}, ",
            "\"env_frames\": {}, \"heartbeats\": {}, \"workers_clean\": {}, ",
            "\"shard_watermarks\": {:?}, \"mean_return\": {}}},\n",
            "  \"tcp_compressed\": {{\"updates\": {}, \"wall_s\": {}, \"updates_per_s\": {}, ",
            "\"env_frames\": {}, \"heartbeats\": {}, \"workers_clean\": {}, ",
            "\"shard_watermarks\": {:?}, \"mean_return\": {}}},\n",
            "  \"slowdown\": {{\"ratio\": {}, \"compressed_ratio\": {}, \"budget\": {}}},\n",
            "  \"wire\": {{\"bytes_tx\": {}, \"bytes_rx\": {}, \"reconnects\": {}, ",
            "\"compressed_bytes_tx\": {}, \"compressed_bytes_rx\": {}, ",
            "\"compressed_reconnects\": {}, \"reduction_tx\": {}, \"reduction_rx\": {}, ",
            "\"reduction_total\": {}}},\n",
            "  \"serve_latency_us\": {{\"direct_p50\": {}, \"direct_p99\": {}, ",
            "\"tcp_p50\": {}, \"tcp_p99\": {}}}\n",
            "}}\n"
        ),
        budget.num_workers,
        budget.envs_per_worker,
        budget.num_shards,
        budget.task_size,
        json_f(budget.baseline_secs),
        target_updates,
        base.updates,
        json_f(base.wall_time.as_secs_f64()),
        json_f(base_ups),
        base.env_frames,
        net_plain.updates,
        json_f(net_plain.wall_time.as_secs_f64()),
        json_f(plain_ups),
        net_plain.env_frames,
        net_plain.heartbeats,
        net_plain.workers_clean,
        net_plain.shard_watermarks,
        json_f(mean_return(&net_plain.returns)),
        net_comp.updates,
        json_f(net_comp.wall_time.as_secs_f64()),
        json_f(comp_ups),
        net_comp.env_frames,
        net_comp.heartbeats,
        net_comp.workers_clean,
        net_comp.shard_watermarks,
        json_f(mean_return(&net_comp.returns)),
        json_f(slowdown_plain),
        json_f(slowdown_comp),
        MAX_SLOWDOWN,
        plain_tx,
        plain_rx,
        plain_rec.counter("net.reconnects").value(),
        comp_tx,
        comp_rx,
        comp_rec.counter("net.reconnects").value(),
        json_f(reduction_tx),
        json_f(reduction_rx),
        json_f(reduction_total),
        json_f(serve.direct_p50_us),
        json_f(serve.direct_p99_us),
        json_f(serve.tcp_p50_us),
        json_f(serve.tcp_p99_us),
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
}
