//! Shared utilities for the figure-regeneration harness.
//!
//! Each `fig*` binary regenerates one figure of the paper's evaluation
//! (§5). Scaling figures (6, 9) *measure* real per-task costs on this
//! machine and replay the coordination at scale on the calibrated
//! discrete-event simulators from `rlgraph-sim` (see DESIGN.md §2 for the
//! substitution rationale). Figures 5a/5b/7a are direct measurements;
//! figures 7b/8 run real training against a virtual clock.

use std::time::{Duration, Instant};

/// Runs `f` once for warm-up, then `runs` times, returning the mean
/// duration per run.
pub fn measure<F: FnMut()>(mut f: F, warmup: usize, runs: usize) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..runs.max(1) {
        f();
    }
    t0.elapsed() / runs.max(1) as u32
}

/// Prints a TSV header line.
pub fn tsv_header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Prints one TSV row.
pub fn tsv_row(values: &[String]) {
    println!("{}", values.join("\t"));
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Standard GridPong throughput environment (pixels, 16×16).
pub fn pong_pixels(seed: u64) -> rlgraph_envs::GridPong {
    rlgraph_envs::GridPong::new(rlgraph_envs::GridPongConfig { seed, ..Default::default() })
}

/// The small convolutional policy used by the act-throughput benchmarks
/// (3 conv layers + dueling head, the paper's Fig. 5b architecture scaled
/// to the GridPong raster).
pub fn pong_conv_network() -> rlgraph_nn::NetworkSpec {
    use rlgraph_nn::{Activation, LayerSpec, NetworkSpec};
    NetworkSpec::new(vec![
        LayerSpec::Conv2d { filters: 8, kernel: 4, stride: 2, padding: 1, activation: Activation::Relu },
        LayerSpec::Conv2d { filters: 16, kernel: 4, stride: 2, padding: 1, activation: Activation::Relu },
        LayerSpec::Conv2d { filters: 16, kernel: 3, stride: 1, padding: 1, activation: Activation::Relu },
        LayerSpec::Flatten,
        LayerSpec::Dense { units: 64, activation: Activation::Relu },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_mean() {
        let d = measure(|| std::thread::sleep(Duration::from_millis(2)), 1, 3);
        assert!(d >= Duration::from_millis(1));
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1)), "1.000");
    }
}
