//! Shared utilities for the figure-regeneration harness.
//!
//! Each `fig*` binary regenerates one figure of the paper's evaluation
//! (§5). Scaling figures (6, 9) *measure* real per-task costs on this
//! machine and replay the coordination at scale on the calibrated
//! discrete-event simulators from `rlgraph-sim` (see DESIGN.md §2 for the
//! substitution rationale). Figures 5a/5b/7a are direct measurements;
//! figures 7b/8 run real training against a virtual clock.

use std::time::{Duration, Instant};

/// Runs `f` once for warm-up, then `runs` times, returning the mean
/// duration per run.
pub fn measure<F: FnMut()>(mut f: F, warmup: usize, runs: usize) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..runs.max(1) {
        f();
    }
    t0.elapsed() / runs.max(1) as u32
}

/// Prints a TSV header line.
pub fn tsv_header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Prints one TSV row.
pub fn tsv_row(values: &[String]) {
    println!("{}", values.join("\t"));
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Parses an optional `--trace <path>` (or `--trace=<path>`) flag from the
/// process arguments. The scaling binaries use it to dump a Chrome
/// trace-event JSON of the simulated cluster run.
pub fn trace_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(Into::into);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(p.into());
        }
    }
    None
}

/// Runs a traced Ape-X simulation on a virtual clock and returns the
/// Chrome trace-event JSON (worker/shard/learner spans in simulated time).
pub fn apex_sim_chrome_trace(params: &rlgraph_sim::ApexSimParams) -> String {
    let (rec, vt) = rlgraph_obs::Recorder::virtual_time();
    let _ = rlgraph_sim::simulate_apex_traced(params, &rec, Some(&vt));
    rlgraph_obs::chrome_trace(&rec)
}

/// Runs a traced IMPALA simulation on a virtual clock and returns the
/// Chrome trace-event JSON (actor/learner spans plus queue-depth series).
pub fn impala_sim_chrome_trace(params: &rlgraph_sim::ImpalaSimParams) -> String {
    let (rec, vt) = rlgraph_obs::Recorder::virtual_time();
    let _ = rlgraph_sim::simulate_impala_traced(params, &rec, Some(&vt));
    rlgraph_obs::chrome_trace(&rec)
}

/// Standard GridPong throughput environment (pixels, 16×16).
pub fn pong_pixels(seed: u64) -> rlgraph_envs::GridPong {
    rlgraph_envs::GridPong::new(rlgraph_envs::GridPongConfig { seed, ..Default::default() })
}

/// The small convolutional policy used by the act-throughput benchmarks
/// (3 conv layers + dueling head, the paper's Fig. 5b architecture scaled
/// to the GridPong raster).
pub fn pong_conv_network() -> rlgraph_nn::NetworkSpec {
    use rlgraph_nn::{Activation, LayerSpec, NetworkSpec};
    NetworkSpec::new(vec![
        LayerSpec::Conv2d {
            filters: 8,
            kernel: 4,
            stride: 2,
            padding: 1,
            activation: Activation::Relu,
        },
        LayerSpec::Conv2d {
            filters: 16,
            kernel: 4,
            stride: 2,
            padding: 1,
            activation: Activation::Relu,
        },
        LayerSpec::Conv2d {
            filters: 16,
            kernel: 3,
            stride: 1,
            padding: 1,
            activation: Activation::Relu,
        },
        LayerSpec::Flatten,
        LayerSpec::Dense { units: 64, activation: Activation::Relu },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_mean() {
        let d = measure(|| std::thread::sleep(Duration::from_millis(2)), 1, 3);
        assert!(d >= Duration::from_millis(1));
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1)), "1.000");
    }

    #[test]
    fn apex_sim_trace_has_valid_chrome_shape() {
        use rlgraph_obs::json;
        use std::collections::HashMap;
        let params = rlgraph_sim::ApexSimParams {
            num_workers: 2,
            num_shards: 1,
            duration: 5.0,
            ..Default::default()
        };
        let trace = apex_sim_chrome_trace(&params);
        let v = json::parse(&trace).expect("trace must be valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
        assert!(!events.is_empty());
        let mut saw_complete = false;
        let mut saw_counter = false;
        let mut saw_thread_name = false;
        let mut last_ts: HashMap<i64, f64> = HashMap::new();
        for ev in events {
            let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
            match ph {
                "X" => {
                    saw_complete = true;
                    let tid = ev.get("tid").and_then(|t| t.as_num()).expect("tid") as i64;
                    let ts = ev.get("ts").and_then(|t| t.as_num()).expect("ts");
                    assert!(ev.get("dur").and_then(|d| d.as_num()).expect("dur") >= 0.0);
                    let last = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                    assert!(ts >= *last, "ts not monotone on tid {tid}: {ts} < {last}");
                    *last = ts;
                }
                "C" => saw_counter = true,
                "M" if ev.get("name").and_then(|n| n.as_str()) == Some("thread_name") => {
                    saw_thread_name = true;
                }
                _ => {}
            }
        }
        assert!(saw_complete, "simulated run must emit complete spans");
        assert!(saw_counter, "frames/updates counter series expected");
        assert!(saw_thread_name, "track metadata expected");
        for name in ["collect", "train", "insert", "sample"] {
            assert!(trace.contains(&format!("\"{name}\"")), "missing span {name}");
        }
    }

    #[test]
    fn impala_sim_trace_parses_and_names_tracks() {
        use rlgraph_obs::json;
        let params =
            rlgraph_sim::ImpalaSimParams { num_actors: 3, duration: 5.0, ..Default::default() };
        let trace = impala_sim_chrome_trace(&params);
        let v = json::parse(&trace).expect("trace must be valid JSON");
        assert!(v.get("traceEvents").and_then(|e| e.as_arr()).is_some());
        assert!(trace.contains("actor-0"));
        assert!(trace.contains("\"rollout\""));
        assert!(trace.contains("queue_depth"));
    }
}
