//! Quickstart: a dueling double-DQN learns CartPole.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the paper's agent API (Listing 2): `get_actions`,
//! `observe`, `update` — each served by a single backend call — plus the
//! declarative JSON configuration style (§3.4).

use rlgraph::prelude::*;
use rlgraph_tensor::Tensor as T;

fn main() -> rlgraph_core::Result<()> {
    // The paper's declarative JSON agent configuration.
    let config = DqnConfig::from_json(
        r#"{
            "backend": "static",
            "network": {"layers": [
                {"type": "dense", "units": 64, "activation": "tanh"},
                {"type": "dense", "units": 64, "activation": "tanh"}
            ]},
            "dueling": true,
            "double": true,
            "memory_capacity": 20000,
            "batch_size": 32,
            "gamma": 0.99,
            "optimizer": {"type": "adam", "lr": 0.001, "beta1": 0.9,
                           "beta2": 0.999, "epsilon": 1e-8},
            "epsilon": {"start": 1.0, "end": 0.02, "decay_steps": 4000},
            "target_sync_every": 100,
            "seed": 7
        }"#,
    )?;

    let mut env = CartPole::new(7, 200);
    let mut agent = DqnAgent::new(config, &env.state_space(), &env.action_space())?;
    let report = agent.build_report();
    println!(
        "built DQN: {} components ({} touched), {} graph nodes, {} variables",
        report.num_components,
        report.num_components_touched,
        report.num_nodes,
        report.num_variables
    );
    println!(
        "build overhead: trace {:.1} ms + build {:.1} ms",
        report.assemble_time.as_secs_f64() * 1e3,
        report.build_time.as_secs_f64() * 1e3
    );

    let mut returns: Vec<f32> = Vec::new();
    for episode in 0..300 {
        let mut obs = env.reset();
        let mut ep_return = 0.0;
        loop {
            let batched = T::stack(&[obs.clone()]).expect("stack one obs");
            let action_b = agent.get_actions(batched, true)?;
            let action = action_b.unstack().expect("one action").remove(0);
            let step = env.step(&action).map_err(|e| rlgraph_core::CoreError::new(e.message()))?;
            ep_return += step.reward;
            agent.observe(
                T::stack(&[obs]).expect("batch"),
                T::stack(&[action]).expect("batch"),
                T::from_vec(vec![step.reward], &[1]).expect("shape"),
                T::stack(&[step.obs.clone()]).expect("batch"),
                T::from_vec_bool(vec![step.terminal], &[1]).expect("shape"),
            )?;
            agent.update()?;
            obs = step.obs;
            if step.terminal {
                break;
            }
        }
        returns.push(ep_return);
        if (episode + 1) % 25 == 0 {
            let recent: f32 =
                returns.iter().rev().take(25).sum::<f32>() / returns.len().min(25) as f32;
            println!("episode {:>4}  mean return (last 25): {:>6.1}", episode + 1, recent);
            if recent > 150.0 {
                println!("solved — mean return above 150");
                break;
            }
        }
    }
    let tail = &returns[returns.len().saturating_sub(25)..];
    let final_mean: f32 = tail.iter().sum::<f32>() / tail.len() as f32;
    println!("final mean return: {:.1} over {} episodes", final_mean, returns.len());
    Ok(())
}
