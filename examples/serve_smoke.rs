//! Policy serving end to end: micro-batching, backpressure, and hot
//! weight swap on a two-replica fleet.
//!
//! ```text
//! cargo run --release --example serve_smoke
//! ```
//!
//! Spawns a `PolicyServer` with two greedy act-only replicas built from
//! the same component graph, drives concurrent clients through the
//! admission queue, publishes a new weight snapshot mid-flight, and
//! prints the serving metrics the server recorded about itself.

use rlgraph::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let recorder = Recorder::wall();
    let space = Space::float_box_bounded(&[8], -1.0, 1.0);
    let network = NetworkSpec::mlp(&[32, 32], Activation::Tanh);
    let num_actions = 4;

    let space_for_factory = space.clone();
    let server = PolicyServer::spawn(
        ServeConfig {
            num_replicas: 2,
            max_batch: 8,
            max_delay: Duration::from_micros(500),
            queue_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            default_deadline: Some(Duration::from_secs(1)),
        },
        space.clone(),
        recorder.clone(),
        move |i| {
            // Same component graph for every replica; same seed so the
            // fleet starts in lockstep before the first weight publish.
            let replica =
                greedy_policy_replica(&network, &space_for_factory, num_actions, false, 7)?;
            println!("replica {i} built");
            Ok(Box::new(replica))
        },
    )?;

    // Phase 1: concurrent clients, initial weights.
    let client = server.client();
    let first: Vec<_> = (0..3)
        .map(|c| {
            let client = client.clone();
            std::thread::spawn(move || {
                let mut actions = Vec::new();
                for step in 0..50 {
                    let obs = observation(c, step);
                    actions.push(client.act(obs).expect("act").as_i64().expect("i64")[0]);
                }
                actions
            })
        })
        .collect();
    for (c, h) in first.into_iter().enumerate() {
        let actions = h.join().expect("client thread");
        println!("client {c}: 50 actions, first five {:?}", &actions[..5]);
    }

    // Phase 2: hot-swap weights (as a learner would) and keep serving.
    let fresh = rlgraph::serve::greedy_policy_replica(
        &NetworkSpec::mlp(&[32, 32], Activation::Tanh),
        &space,
        num_actions,
        false,
        99,
    )?;
    use rlgraph::serve::PolicyReplica;
    let version = server.publish_weights(fresh.export_weights());
    println!("published weight snapshot v{version}");
    for step in 0..20 {
        let _ = client.act(observation(9, step))?;
    }

    let snap = recorder.metrics_snapshot();
    println!("\nserving metrics:");
    for (name, value) in &snap.counters {
        if name.starts_with("serve.") {
            println!("  {name:<24} {value}");
        }
    }
    for (name, h) in &snap.histograms {
        if name.starts_with("serve.") {
            println!(
                "  {name:<24} count={} mean={:.1} p50={:.0} p95={:.0} p99={:.0}",
                h.count, h.mean, h.p50, h.p95, h.p99
            );
        }
    }
    server.shutdown();
    println!("\nserve smoke OK");
    Ok(())
}

fn observation(client: usize, step: usize) -> Tensor {
    let values: Vec<f32> =
        (0..8).map(|i| ((client * 131 + step * 17 + i) as f32 * 0.07).sin()).collect();
    Tensor::from_vec(values, &[8]).expect("observation")
}
