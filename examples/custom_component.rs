//! Writing and testing a custom component (paper §3.3 and Listing 1).
//!
//! ```text
//! cargo run --release --example custom_component
//! ```
//!
//! Defines an advantage-normalisation component from scratch, builds it
//! in isolation from example spaces on *both* backends, and drives it with
//! sampled inputs — the paper's incremental sub-graph testing workflow.

use rand::SeedableRng;
use rlgraph::prelude::*;
use rlgraph_core::CoreError;

/// Normalises a batch of advantages to zero mean and unit variance —
/// a typical "one new component per algorithm" the paper expects users to
/// write (§3.3: "most users will only need to define few components to
/// prototype new algorithms").
struct AdvantageNormalizer {
    epsilon: f32,
}

impl Component for AdvantageNormalizer {
    fn name(&self) -> &str {
        "advantage-normalizer"
    }

    fn api_methods(&self) -> Vec<String> {
        vec!["normalize".into()]
    }

    fn call_api(
        &mut self,
        method: &str,
        ctx: &mut BuildCtx,
        id: ComponentId,
        inputs: &[OpRef],
    ) -> rlgraph_core::Result<Vec<OpRef>> {
        if method != "normalize" {
            return Err(CoreError::new(format!("no method '{}'", method)));
        }
        let epsilon = self.epsilon;
        // The graph function is the only place backend ops appear — the
        // same body builds static nodes or runs eagerly.
        ctx.graph_fn(id, "normalize_fn", inputs, 1, move |ctx, ins| {
            let adv = ins[0];
            let mean = ctx.emit(OpKind::Mean { axes: None, keep_dims: false }, &[adv])?;
            let centered = ctx.emit(OpKind::Sub, &[adv, mean])?;
            let sq = ctx.emit(OpKind::Square, &[centered])?;
            let var = ctx.emit(OpKind::Mean { axes: None, keep_dims: false }, &[sq])?;
            let eps = ctx.scalar(epsilon);
            let var_eps = ctx.emit(OpKind::Add, &[var, eps])?;
            let std = ctx.emit(OpKind::Sqrt, &[var_eps])?;
            Ok(vec![ctx.emit(OpKind::Div, &[centered, std])?])
        })
    }
}

fn main() -> rlgraph_core::Result<()> {
    // Build the component for a declared input space — no placeholders or
    // variables written by hand (paper Listing 1).
    let space = Space::float_box_bounded(&[], -10.0, 10.0).with_batch_rank();
    for backend in [TestBackend::Static, TestBackend::DefineByRun] {
        let mut test = ComponentTest::with_backend(
            AdvantageNormalizer { epsilon: 1e-6 },
            &[("normalize", vec![space.clone()])],
            backend,
        )?;
        // Drive it with inputs sampled from the space.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (inputs, outputs) = test.test_with_samples("normalize", 64, &mut rng)?;
        let out = outputs[0].as_f32().map_err(CoreError::from)?;
        let mean: f32 = out.iter().sum::<f32>() / out.len() as f32;
        let var: f32 = out.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / out.len() as f32;
        println!(
            "{:?}: input mean {:+.3} -> output mean {:+.6}, variance {:.4}",
            backend,
            inputs[0].as_f32().map_err(CoreError::from)?.iter().sum::<f32>() / 64.0,
            mean,
            var
        );
        assert!(mean.abs() < 1e-4, "normalised mean should be ~0");
        assert!((var - 1.0).abs() < 1e-2, "normalised variance should be ~1");
    }
    println!("component verified on both backends from sampled spaces");
    Ok(())
}
