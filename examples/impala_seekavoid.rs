//! IMPALA on SeekAvoid: graph-fused actors feeding a blocking queue, a
//! V-trace learner with staging (paper §5.1, Fig. 9).
//!
//! ```text
//! cargo run --release --example impala_seekavoid
//! ```

use rlgraph::prelude::*;
use rlgraph_dist::{run_impala, ImpalaDriverConfig};
use rlgraph_envs::SeekAvoidConfig;
use std::time::Duration;

fn main() -> rlgraph_core::Result<()> {
    let agent = ImpalaConfig {
        backend: Backend::Static,
        network: NetworkSpec::new(vec![
            LayerSpec::Flatten,
            LayerSpec::Dense { units: 64, activation: Activation::Relu },
        ]),
        // the paper's IMPALA architecture has an LSTM core; recurrent
        // state threads through the fused rollout and is re-unrolled by
        // the learner from each rollout's initial state
        lstm_units: Some(32),
        rollout_len: 16,
        queue_capacity: 4,
        entropy_cost: 0.01,
        seed: 11,
        ..ImpalaConfig::default()
    };
    let config = ImpalaDriverConfig {
        agent,
        num_actors: 2,
        envs_per_actor: 2,
        weight_sync_interval: 2,
        run_duration: Duration::from_secs(20),
        max_updates: None,
        ..ImpalaDriverConfig::default()
    };
    println!(
        "running IMPALA: {} actors x {} envs, rollout {}, lstm {:?} ...",
        config.num_actors, config.envs_per_actor, config.agent.rollout_len, config.agent.lstm_units
    );
    let stats = run_impala(config, |a, e| {
        Box::new(SeekAvoid::new(SeekAvoidConfig {
            seed: (a * 100 + e) as u64,
            render_cost: 2,
            max_steps: 200,
            ..SeekAvoidConfig::default()
        }))
    })?;
    println!("env frames:      {}", stats.env_frames);
    println!("learner updates: {}", stats.updates);
    println!("throughput:      {:.0} env frames/s", stats.frames_per_second);
    if let Some(r) = stats.mean_return {
        println!("mean return:     {:.2}", r);
    }
    if let (Some(first), Some(last)) = (stats.losses.first(), stats.losses.last()) {
        println!("total loss:      {:.4} -> {:.4}", first, last);
    }
    Ok(())
}
