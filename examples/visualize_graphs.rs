//! Graph visualisation (paper Appendix A): exports component-scoped,
//! device-coloured Graphviz renderings of the Ape-X/DQN learner and the
//! IMPALA actor.
//!
//! ```text
//! cargo run --release --example visualize_graphs
//! dot -Tsvg target/dqn_learner.dot -o dqn.svg   # if graphviz is installed
//! ```

use rlgraph::prelude::*;
use rlgraph_agents::dqn::{dqn_api_spaces, DqnRoot};
use rlgraph_agents::impala::ImpalaActorRoot;
use rlgraph_core::dot::{graph_to_dot, meta_to_dot};
use rlgraph_core::DeviceMap;
use rlgraph_envs::RandomEnv;
use rlgraph_graph::{Device, TensorQueue};
use std::fs;

fn main() -> rlgraph_core::Result<()> {
    fs::create_dir_all("target").ok();

    // ----- DQN / Ape-X learner -----
    let config = DqnConfig {
        network: NetworkSpec::mlp(&[32, 32], Activation::Relu),
        batch_size: 8,
        ..DqnConfig::default()
    };
    let mut store = ComponentStore::new();
    let root = DqnRoot::compose(&mut store, &config, 4);
    let root_id = store.add(root);
    // Device map: policy on the (simulated) GPU, everything else CPU —
    // the colouring the paper's Appendix A highlights.
    let mut devices = DeviceMap::new();
    devices.assign("", Device::Cpu);
    devices.assign("dqn/policy", Device::Gpu(0));
    devices.assign("dqn/target-policy", Device::Gpu(0));
    let mut builder =
        ComponentGraphBuilder::new(root_id).device_map(devices).dummy_batch(config.batch_size);
    for (m, s) in dqn_api_spaces(&Space::float_box(&[6]), &Space::int_box(4)) {
        builder = builder.api_method(&m, s);
    }
    let (executor, report) = builder.build_static(store)?;
    let graph = executor.session().graph();
    let dot = graph_to_dot(graph, "rlgraph Ape-X learner");
    fs::write("target/dqn_learner.dot", &dot).expect("write dot file");
    let meta_dot = meta_to_dot(rlgraph_core::GraphExecutor::meta(&executor), "DQN component graph");
    fs::write("target/dqn_components.dot", &meta_dot).expect("write dot file");
    println!(
        "DQN learner: {} components, {} nodes -> target/dqn_learner.dot ({} bytes)",
        report.num_components,
        report.num_nodes,
        dot.len()
    );

    // ----- IMPALA actor (fused env stepping) -----
    let impala_cfg = ImpalaConfig {
        network: NetworkSpec::mlp(&[32], Activation::Relu),
        rollout_len: 4,
        ..ImpalaConfig::default()
    };
    let queue = TensorQueue::new("rollouts", 2);
    let envs = VectorEnv::from_factory(2, |i| {
        Box::new(RandomEnv::new(&[6], 4, 50, i as u64)) as Box<dyn Env>
    })
    .map_err(|e| rlgraph_core::CoreError::new(e.message()))?;
    let mut store = ComponentStore::new();
    let (actor_root, _envs_handle) = ImpalaActorRoot::compose(&mut store, &impala_cfg, envs, queue);
    let actor_id = store.add(actor_root);
    let builder = ComponentGraphBuilder::new(actor_id)
        .api_method("rollout_and_enqueue", vec![])
        .dummy_batch(2);
    let (actor_exec, actor_report) = builder.build_static(store)?;
    let actor_dot = graph_to_dot(actor_exec.session().graph(), "rlgraph IMPALA actor");
    fs::write("target/impala_actor.dot", &actor_dot).expect("write dot file");
    println!(
        "IMPALA actor: {} components, {} nodes -> target/impala_actor.dot ({} bytes)",
        actor_report.num_components,
        actor_report.num_nodes,
        actor_dot.len()
    );
    println!("render with: dot -Tsvg target/dqn_learner.dot -o dqn.svg");
    Ok(())
}
