//! Ape-X across real OS processes on localhost TCP.
//!
//! ```text
//! cargo run --release --example net_apex [-- --trace cluster-trace.json]
//! ```
//!
//! The parent process hosts the replay shards, the coordinator, and the
//! learner loop; each worker is a **separate OS process** launched by
//! re-invoking this executable (`maybe_run_child` is the re-entry
//! point). Trajectories, replay batches, priority updates and versioned
//! weight snapshots all cross loopback TCP through the rlgraph-net wire
//! codec — the same sockets a multi-host deployment would use.
//!
//! With `--trace <path>`, the run writes one merged Chrome trace
//! covering every process (open in `chrome://tracing` or Perfetto):
//! worker rows sit next to the coordinator's on a common clock, and RPC
//! flow arrows connect each client call span to its server handler
//! span. The cluster telemetry report prints to stdout.

use rlgraph::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Worker re-entry: when the runtime re-invokes this binary with a
    // worker spec in the environment, run the worker loop and exit.
    maybe_run_child();

    let args: Vec<String> = std::env::args().collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| "cluster-trace.json".to_string()));

    let recorder = Recorder::wall();
    let config = NetApexConfig {
        agent: DqnConfig {
            backend: Backend::Static,
            network: NetworkSpec::mlp(&[32], Activation::Tanh),
            memory_capacity: 4096,
            batch_size: 16,
            n_step: 3,
            target_sync_every: 100,
            seed: 7,
            ..DqnConfig::default()
        },
        env: EnvSpec::CartPole { max_steps: 200 },
        num_workers: 2,
        envs_per_worker: 2,
        task_size: 32,
        num_shards: 2,
        weight_sync_interval: 8,
        run_duration: Duration::from_secs(120),
        max_updates: Some(40),
        rpc_deadline: Duration::from_secs(10),
        launch: LaunchMode::Process,
        shard_proxy: None,
        transport: Transport::default(),
        compression: true,
        elastic: None,
        recorder: recorder.clone(),
    };
    let workers = config.num_workers;

    println!("launching {} worker processes against 2 TCP replay shards...", workers);
    let stats = run_apex_net(config)?;

    println!(
        "done: {} learner updates in {:.2}s, {} env frames ({:.0} frames/s)",
        stats.updates,
        stats.wall_time.as_secs_f64(),
        stats.env_frames,
        stats.frames_per_second
    );
    println!(
        "workers clean: {}/{}; heartbeats: {}; shard watermarks: {:?}",
        stats.workers_clean, workers, stats.heartbeats, stats.shard_watermarks
    );
    println!(
        "wire: {} bytes tx, {} bytes rx, {} reconnects",
        recorder.counter("net.bytes_tx").value(),
        recorder.counter("net.bytes_rx").value(),
        recorder.counter("net.reconnects").value()
    );
    assert_eq!(stats.updates, 40, "run should hit its update budget");
    assert_eq!(stats.workers_clean, workers, "worker processes should exit cleanly");

    if let Some(report) = &stats.telemetry_dump {
        println!("\n{}", report);
    }
    if let Some(path) = trace_path {
        let trace = stats.merged_trace.as_deref().expect("recorder enabled, trace rendered");
        assert!(
            trace.contains("\"worker-0\"") && trace.contains("\"worker-1\""),
            "merged trace should carry one row per worker process"
        );
        assert!(
            trace.contains("\"ph\":\"s\"") && trace.contains("\"ph\":\"f\""),
            "merged trace should stitch RPC spans with flow events"
        );
        std::fs::write(&path, trace)?;
        println!("merged cluster trace ({} processes) written to {}", 1 + workers, path);
    }
    println!("net_apex: multi-process Ape-X over TCP completed ✓");
    Ok(())
}
