//! Distributed Ape-X on GridPong: workers, replay shards, and a learner
//! coordinated Ray-style on threads (paper §5.1, Figs. 6/7).
//!
//! ```text
//! cargo run --release --example apex_pong
//! ```

use rlgraph::prelude::*;
use rlgraph_dist::{run_apex, ApexRunConfig};
use rlgraph_envs::gridpong::PongObs;
use std::time::Duration;

fn main() -> rlgraph_core::Result<()> {
    let agent = DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[64, 64], Activation::Tanh),
        memory_capacity: 50_000,
        batch_size: 32,
        n_step: 3,
        target_sync_every: 200,
        epsilon: EpsilonSchedule { start: 1.0, end: 0.05, decay_steps: 20_000 },
        seed: 3,
        ..DqnConfig::default()
    };
    let config = ApexRunConfig {
        agent,
        num_workers: 2,
        envs_per_worker: 4,
        task_size: 200,
        num_shards: 2,
        weight_sync_interval: 16,
        run_duration: Duration::from_secs(30),
        max_updates: None,
        ..ApexRunConfig::default()
    };
    println!(
        "running Ape-X: {} workers x {} envs, {} shards, {:?} budget ...",
        config.num_workers, config.envs_per_worker, config.num_shards, config.run_duration
    );
    let stats = run_apex(config, |w, e| {
        let mut cfg = GridPongConfig::learnable((w * 100 + e) as u64);
        cfg.obs = PongObs::Vector;
        Box::new(GridPong::new(cfg))
    })?;
    println!("env frames:        {}", stats.env_frames);
    println!("samples shipped:   {}", stats.samples_collected);
    println!("learner updates:   {}", stats.updates);
    println!("throughput:        {:.0} env frames/s", stats.frames_per_second);
    if let Some(r) = stats.mean_recent_return(50) {
        println!("mean recent return: {:.2} (game to 5 points, range -5..5)", r);
    }
    if let (Some(first), Some(last)) = (stats.losses.first(), stats.losses.last()) {
        println!("learner loss:      {:.4} -> {:.4}", first, last);
    }
    Ok(())
}
