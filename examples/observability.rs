//! Observability: metrics, spans, and trace export around a live agent.
//!
//! ```text
//! cargo run --release --example observability [-- <trace.json>]
//! ```
//!
//! Trains a small DQN on CartPole with an enabled [`Recorder`], then
//! prints the aggregate summary (counters, gauges, histogram
//! percentiles, span totals), the session's per-op time accounting, and
//! a Graphviz heat-map of where graph time went. Passing a path writes
//! a Chrome trace-event JSON loadable in `chrome://tracing`.

use rlgraph::prelude::*;
use rlgraph_obs::{summary, write_chrome_trace};
use rlgraph_tensor::Tensor as T;

fn main() -> rlgraph_core::Result<()> {
    let recorder = Recorder::wall();

    let config = DqnConfig {
        network: NetworkSpec::mlp(&[32], Activation::Tanh),
        memory_capacity: 5000,
        batch_size: 16,
        seed: 11,
        ..DqnConfig::default()
    };
    let mut env = CartPole::new(11, 200);
    let mut agent = DqnAgent::new(config, &env.state_space(), &env.action_space())?;
    agent.set_recorder(&recorder);

    for _episode in 0..30 {
        let mut obs = env.reset();
        loop {
            let batched = T::stack(&[obs.clone()]).expect("stack one obs");
            let action_b = agent.get_actions(batched, true)?;
            let action = action_b.unstack().expect("one action").remove(0);
            let step = env.step(&action).map_err(|e| rlgraph_core::CoreError::new(e.message()))?;
            agent.observe(
                T::stack(&[obs]).expect("batch"),
                T::stack(&[action]).expect("batch"),
                T::from_vec(vec![step.reward], &[1]).expect("shape"),
                T::stack(&[step.obs.clone()]).expect("batch"),
                T::from_vec_bool(vec![step.terminal], &[1]).expect("shape"),
            )?;
            agent.update()?;
            obs = step.obs;
            if step.terminal {
                break;
            }
        }
    }

    println!("{}", summary(&recorder));

    // The static session keeps its per-op / per-device accounting
    // regardless of the recorder (same numbers `Session::stats()` always
    // reported).
    let exec = agent.executor_mut();
    if let Some(static_exec) = exec.as_static() {
        let stats = static_exec.session().stats();
        let mut ops: Vec<_> = stats.per_op_time_us.iter().collect();
        ops.sort_by(|a, b| b.1.cmp(a.1));
        println!("== top ops by session time ==");
        for (name, us) in ops.iter().take(8) {
            println!("{name:<44} {us:>10} us");
        }
        let dot = rlgraph_core::dot::graph_to_dot_profiled(
            static_exec.session().graph(),
            "dqn_profiled",
            Some(&static_exec.session().node_profile()),
        );
        println!("\nprofiled DOT export: {} bytes (red = hot nodes)", dot.len());
    }

    if let Some(path) = std::env::args().nth(1) {
        let path = std::path::PathBuf::from(path);
        write_chrome_trace(&recorder, &path)
            .map_err(|e| rlgraph_core::CoreError::new(format!("write trace: {e}")))?;
        println!("wrote Chrome trace to {}", path.display());
    }
    Ok(())
}
