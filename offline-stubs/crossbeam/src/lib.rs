//! Offline stub of `crossbeam` providing MPMC bounded channels with the
//! crossbeam-channel API surface this workspace uses.

pub mod channel {
    //! Bounded MPMC channel over Mutex + Condvar.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half (cloneable, MPMC).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half (cloneable, MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error on send into a channel with no receivers.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam, Debug does not require `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error on non-blocking send.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// channel at capacity
        Full(T),
        /// all receivers dropped
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error on receive from an empty, sender-less channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error on non-blocking receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// nothing buffered right now
        Empty,
        /// empty and all senders dropped
        Disconnected,
    }

    /// Error on timed receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// deadline passed
        Timeout,
        /// empty and all senders dropped
        Disconnected,
    }

    /// Creates a bounded channel of the given capacity (0 = rendezvous is
    /// NOT supported by this stub; a capacity of 0 is bumped to 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { buf: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates an effectively unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX)
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel lock").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel lock").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; errors when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.buf.len() < self.0.cap {
                    st.buf.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).expect("channel lock");
            }
        }

        /// Non-blocking send.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.queue.lock().expect("channel lock");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.buf.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            st.buf.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").buf.len()
        }

        /// Whether no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors when empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.queue.lock().expect("channel lock");
            if let Some(v) = st.buf.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .0
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = g;
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").buf.len()
        }

        /// Whether no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = bounded(2);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn try_send_full_and_timeout() {
        let (tx, rx) = bounded::<i32>(1);
        tx.send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        ));
        assert_eq!(rx.len(), 0);
    }
}
