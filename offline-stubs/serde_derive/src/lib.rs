//! Offline stub of `serde_derive`: emits empty marker-trait impls for
//! non-generic structs/enums (the only shapes this workspace derives on)
//! and accepts-but-ignores `#[serde(...)]` attributes.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            _ => {}
        }
    }
    panic!("serde_derive stub: could not find type name");
}

/// Derives the stub `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {} {{}}", name).parse().expect("valid impl")
}

/// Derives the stub `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {} {{}}", name).parse().expect("valid impl")
}
