//! Offline stub of `serde_derive` with real codegen.
//!
//! Hand-parses the derive input `TokenStream` (no `syn` available
//! offline) and emits working `serde::Serialize::to_value` /
//! `serde::Deserialize::from_value` impls against the stub `serde`
//! crate's reflective [`Value`] data model. Covers the shapes this
//! workspace actually derives on: non-generic structs with named
//! fields, and enums with unit / newtype / tuple / struct variants,
//! externally tagged or internally tagged via `#[serde(tag = "...")]`,
//! with `#[serde(rename_all = "snake_case")]`, `#[serde(rename)]`, and
//! `#[serde(default [= "path"])]` support. Anything else panics at
//! macro-expansion time so gaps surface as compile errors, not silent
//! misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The `#[serde(...)]` attributes this stub understands.
#[derive(Default, Clone)]
struct SerdeAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
    rename: Option<String>,
    default: Option<DefaultKind>,
}

#[derive(Clone)]
enum DefaultKind {
    /// Bare `#[serde(default)]`: `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    json_name: String,
    default: Option<DefaultKind>,
    is_option: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    json_name: String,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    Enum(SerdeAttrs, Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn lit_string(tok: &TokenTree) -> String {
    let s = tok.to_string();
    s.trim_matches('"').to_string()
}

/// Applies serde's `rename_all = "snake_case"` rule to a variant name.
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn apply_rename(name: &str, rename: &Option<String>, rename_all: &Option<String>) -> String {
    if let Some(r) = rename {
        return r.clone();
    }
    match rename_all.as_deref() {
        Some("snake_case") => snake_case(name),
        Some("lowercase") => name.to_ascii_lowercase(),
        Some(other) => panic!("serde_derive stub: unsupported rename_all = \"{}\"", other),
        None => name.to_string(),
    }
}

/// Parses the token group inside `#[serde(...)]` into `attrs`.
fn parse_serde_attr(tokens: Vec<TokenTree>, attrs: &mut SerdeAttrs) {
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => panic!("serde_derive stub: unexpected token in #[serde(...)]: {}", other),
        };
        let has_value = matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        let value = if has_value { Some(lit_string(&tokens[i + 2])) } else { None };
        match (key.as_str(), value) {
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("default", Some(v)) => attrs.default = Some(DefaultKind::Path(v)),
            ("default", None) => attrs.default = Some(DefaultKind::Std),
            (other, _) => panic!("serde_derive stub: unsupported serde attribute '{}'", other),
        }
        i += if has_value { 3 } else { 1 };
    }
}

/// Consumes leading `#[...]` attributes at `toks[*i]`, folding any
/// `#[serde(...)]` contents into the returned attrs.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let TokenTree::Group(g) = &toks[*i + 1] else {
            panic!("serde_derive stub: expected [...] after #");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                let TokenTree::Group(args) = &inner[1] else {
                    panic!("serde_derive stub: expected #[serde(...)]");
                };
                parse_serde_attr(args.stream().into_iter().collect(), &mut attrs);
            }
        }
        *i += 2;
    }
    attrs
}

/// Skips a `pub` / `pub(...)` visibility qualifier if present.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parses `name: Type` fields from a brace-group body.
fn parse_fields(body: TokenStream, rename_all: &Option<String>) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive stub: expected field name, found {}", toks[i]);
        };
        let name = name.to_string();
        i += 1;
        assert!(
            matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive stub: expected ':' after field '{}'",
            name
        );
        i += 1;
        // Consume the type up to a top-level comma, tracking angle-bracket
        // depth so commas inside `Map<K, V>` don't split the field.
        let mut depth = 0i32;
        let mut first_ty_tok: Option<String> = None;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                tok => {
                    if first_ty_tok.is_none() {
                        first_ty_tok = Some(tok.to_string());
                    }
                }
            }
            i += 1;
        }
        let is_option = first_ty_tok.as_deref() == Some("Option");
        fields.push(Field {
            json_name: apply_rename(&name, &attrs.rename, rename_all),
            name,
            default: attrs.default,
            is_option,
        });
    }
    fields
}

/// Counts top-level elements of a tuple-variant paren group.
fn tuple_arity(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for tok in &toks {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    commas + if trailing_comma { 0 } else { 1 }
}

fn parse_variants(body: TokenStream, container: &SerdeAttrs) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive stub: expected variant name, found {}", toks[i]);
        };
        let name = name.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_fields(g.stream(), &None))
            }
            _ => VariantShape::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant {
            json_name: apply_rename(&name, &attrs.rename, &container.rename_all),
            name,
            shape,
        });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container = take_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, found {}", other),
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde_derive stub: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type '{}' is not supported", name);
    }
    let shape = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_fields(g.stream(), &container.rename_all))
            }
            other => panic!(
                "serde_derive stub: only named-field structs are supported for '{}' (found {:?})",
                name,
                other.map(|t| t.to_string())
            ),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream(), &container);
                Shape::Enum(container, variants)
            }
            _ => panic!("serde_derive stub: malformed enum '{}'", name),
        },
        other => panic!("serde_derive stub: cannot derive for '{}' items", other),
    };
    Input { name, shape }
}

// ---------------------------------------------------------------- codegen

/// `("json_name".to_string(), to_value(&self.field))` pairs for a struct
/// body; `accessor` is how a field is reached (`&self.` or bare binding).
fn gen_struct_ser_pairs(fields: &[Field], accessor: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), serde::Serialize::to_value({}{})),",
                f.json_name, accessor, f.name
            )
        })
        .collect()
}

/// Expression producing a field value from object expression `obj`.
fn gen_field_de(f: &Field, obj: &str, ty_name: &str) -> String {
    let missing = match (&f.default, f.is_option) {
        (Some(DefaultKind::Std), _) => "std::default::Default::default()".to_string(),
        (Some(DefaultKind::Path(p)), _) => format!("{}()", p),
        (None, true) => "None".to_string(),
        (None, false) => format!(
            "return Err(serde::DeError::missing({:?}, {:?}))",
            f.json_name, ty_name
        ),
    };
    format!(
        "{}: match {}.get({:?}) {{ Some(__x) => serde::Deserialize::from_value(__x)?, None => {} }},",
        f.name, obj, f.json_name, missing
    )
}

fn gen_struct_de_body(fields: &[Field], obj: &str, ctor: &str, ty_name: &str) -> String {
    let field_exprs: String = fields.iter().map(|f| gen_field_de(f, obj, ty_name)).collect();
    format!(
        "if !matches!({obj}, serde::Value::Obj(_)) {{ \
             return Err(serde::DeError::expected(\"object\", {obj})); \
         }} \
         Ok({ctor} {{ {field_exprs} }})"
    )
}

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{}", k)).collect()
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            format!("serde::Value::Obj(vec![{}])", gen_struct_ser_pairs(fields, "&self."))
        }
        Shape::Enum(container, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| gen_variant_ser_arm(name, v, &container.tag))
                .collect();
            format!("match self {{ {} }}", arms)
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl serde::Serialize for {name} {{ \
             fn to_value(&self) -> serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_variant_ser_arm(name: &str, v: &Variant, tag: &Option<String>) -> String {
    let vname = &v.name;
    let jname = &v.json_name;
    if let Some(tag) = tag {
        // Internally tagged: `{"<tag>": "<variant>", ...fields}`.
        return match &v.shape {
            VariantShape::Unit => format!(
                "{name}::{vname} => serde::Value::Obj(vec![({tag:?}.to_string(), \
                 serde::Value::Str({jname:?}.to_string()))]),"
            ),
            VariantShape::Struct(fields) => {
                let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let pairs = gen_struct_ser_pairs(fields, "");
                format!(
                    "{name}::{vname} {{ {} }} => serde::Value::Obj(vec![({tag:?}.to_string(), \
                     serde::Value::Str({jname:?}.to_string())), {pairs}]),",
                    pat.join(", ")
                )
            }
            VariantShape::Tuple(_) => panic!(
                "serde_derive stub: tuple variant '{}::{}' under #[serde(tag)] is unsupported",
                name, vname
            ),
        };
    }
    // Externally tagged.
    match &v.shape {
        VariantShape::Unit => {
            format!("{name}::{vname} => serde::Value::Str({jname:?}.to_string()),")
        }
        VariantShape::Tuple(1) => format!(
            "{name}::{vname}(__f0) => serde::Value::Obj(vec![({jname:?}.to_string(), \
             serde::Serialize::to_value(__f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds = tuple_bindings(*n);
            let elems: Vec<String> =
                binds.iter().map(|b| format!("serde::Serialize::to_value({})", b)).collect();
            format!(
                "{name}::{vname}({}) => serde::Value::Obj(vec![({jname:?}.to_string(), \
                 serde::Value::Arr(vec![{}]))]),",
                binds.join(", "),
                elems.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            let pairs = gen_struct_ser_pairs(fields, "");
            format!(
                "{name}::{vname} {{ {} }} => serde::Value::Obj(vec![({jname:?}.to_string(), \
                 serde::Value::Obj(vec![{pairs}]))]),",
                pat.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => gen_struct_de_body(fields, "__v", name, name),
        Shape::Enum(container, variants) => match &container.tag {
            Some(tag) => gen_enum_de_internal(name, tag, variants),
            None => gen_enum_de_external(name, variants),
        },
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl<'de> serde::Deserialize<'de> for {name} {{ \
             fn from_value(__v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{ \
                 {body} \
             }} \
         }}"
    )
}

fn unknown_variant(name: &str) -> String {
    format!(
        "__other => Err(serde::DeError(format!(\"unknown variant '{{}}' for {name}\", __other))),"
    )
}

fn gen_enum_de_internal(name: &str, tag: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let jname = &v.json_name;
            match &v.shape {
                VariantShape::Unit => format!("{jname:?} => Ok({name}::{}),", v.name),
                VariantShape::Struct(fields) => {
                    let field_exprs: String =
                        fields.iter().map(|f| gen_field_de(f, "__v", name)).collect();
                    format!("{jname:?} => Ok({name}::{} {{ {field_exprs} }}),", v.name)
                }
                VariantShape::Tuple(_) => panic!(
                    "serde_derive stub: tuple variant '{}::{}' under #[serde(tag)] is unsupported",
                    name, v.name
                ),
            }
        })
        .collect();
    format!(
        "let __tag = match __v.get({tag:?}) {{ \
             Some(serde::Value::Str(__s)) => __s.clone(), \
             Some(__o) => return Err(serde::DeError::expected(\"string tag\", __o)), \
             None => return Err(serde::DeError(format!(\"missing tag '{tag}' for {name}\"))), \
         }}; \
         match __tag.as_str() {{ {arms} {unknown} }}",
        unknown = unknown_variant(name)
    )
}

fn gen_enum_de_external(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| format!("{:?} => Ok({name}::{}),", v.json_name, v.name))
        .collect();
    let data_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            let jname = &v.json_name;
            match &v.shape {
                VariantShape::Tuple(1) => format!(
                    "{jname:?} => Ok({name}::{}(serde::Deserialize::from_value(__inner)?)),",
                    v.name
                ),
                VariantShape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&__items[{}])?", k))
                        .collect();
                    format!(
                        "{jname:?} => match __inner {{ \
                             serde::Value::Arr(__items) if __items.len() == {n} => \
                                 Ok({name}::{}({})), \
                             __o => Err(serde::DeError::expected(\"array of length {n}\", __o)), \
                         }},",
                        v.name,
                        elems.join(", ")
                    )
                }
                VariantShape::Struct(fields) => {
                    let body = gen_struct_de_body(fields, "__inner", &format!("{name}::{}", v.name), name);
                    format!("{jname:?} => {{ {body} }},")
                }
                VariantShape::Unit => unreachable!(),
            }
        })
        .collect();
    format!(
        "match __v {{ \
             serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} {unknown} }}, \
             serde::Value::Obj(__pairs) if __pairs.len() == 1 => {{ \
                 let (__k, __inner) = &__pairs[0]; \
                 match __k.as_str() {{ {data_arms} {unknown} }} \
             }} \
             __other => Err(serde::DeError::expected(\"string or single-key object\", __other)), \
         }}",
        unknown = unknown_variant(name)
    )
}

/// Derives `serde::Serialize` (stub `to_value`) for the input type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (stub `from_value`) for the input type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde_derive stub: generated invalid Deserialize impl")
}
