//! Offline stub of `proptest`: a miniature property-testing runtime that
//! covers the API surface this workspace uses. Cases are generated from a
//! deterministic seeded PRNG; there is **no shrinking** — a failing case
//! panics with the raw assertion message.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies (generate-only, no shrink trees).

    use super::StdRng;
    use rand::RngExt;
    use std::sync::Arc;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the strategy
        /// it induces.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive structures: `self` is the leaf; `f` lifts an inner
        /// strategy one level. `depth` bounds the recursion.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _items: u32,
            f: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive { leaf: self.boxed(), depth, lift: Arc::new(move |s| f(s).boxed()) }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe view of a strategy.
    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut StdRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A shared, type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_recursive`].
    pub struct Recursive<V> {
        leaf: BoxedStrategy<V>,
        depth: u32,
        lift: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    }

    impl<V: 'static> Strategy for Recursive<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let mut strat = self.leaf.clone();
            // expand up to `depth` levels, stopping early at random so
            // leaves stay common
            for _ in 0..self.depth {
                if rng.random_range(0.0..1.0f64) < 0.5 {
                    break;
                }
                strat = (self.lift)(strat);
            }
            strat.generate(rng)
        }
    }

    impl<V: 'static> Clone for Recursive<V> {
        fn clone(&self) -> Self {
            Recursive { leaf: self.leaf.clone(), depth: self.depth, lift: self.lift.clone() }
        }
    }

    /// Constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.start..self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),*) => {
            impl<$($s: Strategy),*> Strategy for ($($s,)*) {
                type Value = ($($s::Value,)*);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)*)
                }
            }
        };
    }
    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);

    /// Uniform choice between boxed alternative strategies.
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof needs at least one arm");
            let idx = rng.random_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    /// Canonical strategy for a type ([`super::prelude::any`]).
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            (0..2usize).prop_map(|v| v == 1).boxed()
        }
    }

    macro_rules! impl_arbitrary_num {
        ($($t:ty => $lo:expr, $hi:expr);*;) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    ($lo..$hi).boxed()
                }
            }
        )*};
    }
    impl_arbitrary_num!(
        i64 => -1_000_000i64, 1_000_000i64;
        u64 => 0u64, 1_000_000u64;
        usize => 0usize, 1_000_000usize;
        f32 => -1.0e6f32, 1.0e6f32;
        f64 => -1.0e6f64, 1.0e6f64;
    );
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngExt;

    /// Vector of values from `element`, with a length drawn from `size`
    /// (any range form, as with the real crate's `SizeRange`).
    pub fn vec<S: Strategy>(
        element: S,
        size: impl std::ops::RangeBounds<usize>,
    ) -> VecStrategy<S> {
        use std::ops::Bound;
        let start = match size.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match size.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => start.saturating_add(100),
        };
        VecStrategy { element, size: start..end.max(start) }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.start..self.size.end)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The miniature case runner.

    use super::{SeedableRng, StdRng};

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// number of generated cases
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert*` (carried as a panic payload).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    /// Deterministic runner: fixed seed stream, no shrinking.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config, rng: StdRng::seed_from_u64(0x5EED_CAFE) }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The case PRNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// `proptest::prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }

    /// Canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                for case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());)*
                    let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    if let Err(e) = run() {
                        panic!("proptest stub: case {} failed: {}", case, e.0);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Asserts within a property (no shrinking: fails the whole test).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {:?} != {:?}", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Skips a case whose preconditions do not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shapes() -> impl Strategy<Value = Vec<usize>> {
        collection::vec(1usize..5, 1..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.0f32..1.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_and_flat_map(shape in shapes().prop_flat_map(|s| (Just(s.clone()), 0..s.len()))) {
            let (s, idx) = shape;
            prop_assert!(idx < s.len());
            prop_assert!(s.iter().all(|&d| (1..5).contains(&d)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), (5i64..7), (0i64..2).prop_map(|x| x + 10)]) {
            prop_assert!(v == 1 || v == 5 || v == 6 || v == 10 || v == 11, "v = {}", v);
        }
    }
}
