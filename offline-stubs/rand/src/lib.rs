//! Offline stub of `rand` 0.10 covering the API surface this workspace
//! uses: `Rng`, `RngExt::random_range`, `SeedableRng::seed_from_u64`,
//! and `rngs::StdRng` (an xoshiro256++ generator seeded via SplitMix64).

/// Core RNG trait: a source of uniformly distributed machine words.
pub trait Rng {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)` from `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        let v = lo + unit * (hi - lo);
        if v >= hi {
            lo.max(hi - (hi - lo) * f32::EPSILON)
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = lo + unit * (hi - lo);
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
}

/// Extension methods over [`Rng`] (the 0.10 `random_*` family).
pub trait RngExt: Rng {
    /// Uniform draw from the half-open range `r`.
    fn random_range<T: SampleUniform>(&mut self, r: std::ops::Range<T>) -> T {
        T::sample_range(self, r.start, r.end)
    }

    /// Uniform draw over a whole primitive's unit interval / domain.
    fn random<T: SampleUniform + Random>(&mut self) -> T {
        T::random(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.random_range(0.0..1.0f64)) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Full-domain draws backing [`RngExt::random`].
pub trait Random: Sized {
    /// Draws a canonical value (unit interval for floats).
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f32::sample_range(rng, 0.0, 1.0)
    }
}
impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64::sample_range(rng, 0.0, 1.0)
    }
}
impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically expands a 64-bit seed into a generator.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Standard generators.

    use super::{Rng, SeedableRng};

    /// Stub standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic per seed, statistically reasonable; the stream does
    /// NOT match the real `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f32 = a.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            assert_eq!(x, b.random_range(-2.0..3.0));
        }
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[a.random_range(0..4usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{:?}", counts);
    }
}
