//! Offline stub of `serde_json`. Typechecks against the stub `serde`
//! marker traits; `to_string*` returns a placeholder document and
//! `from_str` always errors (real deserialization needs real serde).

use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Returns a placeholder document (stub cannot introspect values).
pub fn to_string<T: Serialize + ?Sized>(_value: &T) -> Result<String> {
    Ok("{\"__offline_stub\":true}".to_string())
}

/// Returns a placeholder document (stub cannot introspect values).
pub fn to_string_pretty<T: Serialize + ?Sized>(_value: &T) -> Result<String> {
    to_string(_value)
}

/// Always errors: the stub cannot construct values from JSON.
pub fn from_str<'a, T: Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error("from_str unavailable offline".to_string()))
}
