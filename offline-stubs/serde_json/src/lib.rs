//! Offline stub of `serde_json` with a real printer and parser.
//!
//! Serialization lowers through the stub `serde::Value` tree and prints
//! standards-compliant JSON (string escaping included); deserialization
//! is a recursive-descent parser producing a `serde::Value` handed to
//! `Deserialize::from_value`. Together with the stub `serde_derive`
//! codegen this round-trips every type the workspace derives on.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

// ----------------------------------------------------------------- printing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn print_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's shortest-roundtrip Display; ensure a decimal point so the
        // value re-parses as a float when it matters (serde_json prints
        // "2.0", Display prints "2" — both re-parse fine via from_value).
        out.push_str(&format!("{}", f));
    } else {
        // serde_json has no representation for NaN/inf; emit null.
        out.push_str("null");
    }
}

fn print_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => print_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                print_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn print_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                print_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                print_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => print_compact(other, out),
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in this stub; `Result` kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible in this stub; `Result` kept for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{} at byte {}", msg, self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> std::result::Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> std::result::Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", kw)))
        }
    }

    fn parse_value(&mut self) -> std::result::Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> std::result::Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> std::result::Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\x08'),
                        b'f' => out.push('\x0c'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate follows.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.err(&format!("invalid escape '\\{}'", other as char))
                            );
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str, so
                    // decode by continuation-byte skipping).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| (*b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid str"),
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> std::result::Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> std::result::Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number slice is ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            // Integer literal beyond u64 range (e.g. f32::MAX printed via
            // Display): fall back to float.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number '{}'", text)))
    }
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Errors on malformed JSON or trailing non-whitespace input.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Deserializes a value from a JSON document.
///
/// # Errors
///
/// Errors on malformed JSON or when the document's shape does not match
/// the target type.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(|e| Error(e.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>(r#""a\nbé😀""#).unwrap(), "a\nb\u{e9}\u{1f600}");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f32, -0.25, f32::MAX, f32::MIN_POSITIVE];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f32>>(&s).unwrap(), v);
        let s = to_string_pretty(&vec![vec![1u8], vec![]]).unwrap();
        assert_eq!(from_str::<Vec<Vec<u8>>>(&s).unwrap(), vec![vec![1u8], vec![]]);
    }

    #[test]
    fn string_escaping_roundtrips() {
        let s = "quote\" back\\ slash\n tab\t ctrl\x01 unicode\u{1f600}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<u32>("\"str\"").is_err());
    }
}
