//! Offline stub of `parking_lot` implemented over `std::sync`.
//!
//! Guards are not poisoned: a panic while holding a lock simply releases
//! it, matching parking_lot's semantics closely enough for this
//! workspace. `Condvar::wait` takes `&mut MutexGuard` like parking_lot's;
//! internally the std guard is moved through the wait.

use std::sync::{self, TryLockError};

/// Mutual exclusion over `std::sync::Mutex` with parking_lot's API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (never errors; a poisoned std lock is cleared).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|p| p.into_inner())))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Reader-writer lock over `std::sync::RwLock` with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|p| p.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses; returns whether the
    /// wait timed out (parking_lot's `WaitTimeoutResult` shape).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res)
    }

    /// Blocks until notified or `deadline` passes; returns whether the
    /// wait timed out.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let now = std::time::Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        while !*g {
            c.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
        assert!(*m.lock());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
