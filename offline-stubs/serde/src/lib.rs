//! Offline stub of `serde` with a small reflective data model.
//!
//! Unlike real serde's visitor architecture, this stub routes everything
//! through one dynamic [`Value`] tree: `Serialize::to_value` lowers a Rust
//! value into it and `Deserialize::from_value` rebuilds one from it. The
//! stub `serde_derive` generates real impls of both methods, so
//! `serde_json`'s stub can round-trip every type this workspace derives
//! on. The surface is intentionally minimal: exactly what the workspace
//! uses (derived structs/enums with `default`, `rename_all`, and `tag`
//! attributes, plus the std container impls below).

/// Dynamic JSON-shaped value tree: the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer in `i64` range.
    I64(i64),
    /// Integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable kind label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// A type-mismatch error: wanted `expected`, found `got`.
    pub fn expected(expected: &str, got: &Value) -> Self {
        DeError(format!("expected {}, found {}", expected, got.kind()))
    }

    /// A missing-field error for struct `ty`.
    pub fn missing(field: &str, ty: &str) -> Self {
        DeError(format!("missing field '{}' for {}", field, ty))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Stand-in for serde's `Serialize`: lowers into the stub [`Value`].
pub trait Serialize {
    /// The value tree this serializes to.
    fn to_value(&self) -> Value;
}

/// Stand-in for serde's `Deserialize`: rebuilds from a stub [`Value`].
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Errors on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Marker stand-in for serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::I64(i) => *i as i128,
                    Value::U64(u) => *u as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {} out of range", wide)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u128;
                if wide <= i64::MAX as u128 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(wide as u64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::I64(i) => *i as i128,
                    Value::U64(u) => *u as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {} out of range", wide)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

/// Renders a map key. Real serde_json requires string (or stringified
/// numeric) keys; the workspace only uses `String` keys.
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::I64(i) => i.to_string(),
        Value::U64(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("serde stub: map keys must be strings or numbers, found {}", other.kind()),
    }
}

macro_rules! impl_map {
    ($map:ident, $($bound:tt)*) => {
        impl<K: Serialize + $($bound)*, V: Serialize> Serialize for std::collections::$map<K, V> {
            fn to_value(&self) -> Value {
                Value::Obj(
                    self.iter().map(|(k, v)| (key_string(k.to_value()), v.to_value())).collect(),
                )
            }
        }
        impl<'de, K, V> Deserialize<'de> for std::collections::$map<K, V>
        where
            K: Deserialize<'de> + $($bound)*,
            V: Deserialize<'de>,
        {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Obj(pairs) => pairs
                        .iter()
                        .map(|(k, item)| {
                            Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(item)?))
                        })
                        .collect(),
                    other => Err(DeError::expected("object", other)),
                }
            }
        }
    };
}
impl_map!(HashMap, std::hash::Hash + Eq);
impl_map!(BTreeMap, Ord);

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("array of length 2", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::expected("array of length 3", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&(u64::MAX).to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert!(u8::from_value(&Value::I64(300)).is_err());
        let f = 0.1f32;
        assert_eq!(f32::from_value(&f.to_value()).unwrap(), f);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(<(String, bool)>::from_value(&("x".to_string(), true).to_value()).unwrap().1, true);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1i64, 2, 3];
        assert_eq!(Vec::<i64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            std::collections::BTreeMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }
}
