//! Offline stub of `serde`: marker traits with no serialization ability.
//!
//! `#[derive(serde::Serialize, serde::Deserialize)]` compiles (via the
//! stub `serde_derive`), but `serde_json`'s stub `from_str` always
//! errors and `to_string` emits a placeholder — config round-trip tests
//! will fail under stubs, by design.

/// Marker stand-in for serde's `Serialize`.
pub trait Serialize {}

/// Marker stand-in for serde's `Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_primitives!(
    bool, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
