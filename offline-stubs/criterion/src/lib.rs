//! Offline stub of `criterion`: runs each benchmark closure for a fixed
//! warm-up and measurement budget and prints the mean iteration time.
//! No statistics, baselines, or HTML reports.

use std::time::{Duration, Instant};

/// Benchmark registry/runner handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 60 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, budget: self.sample_size };
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters.max(1) as u32
        };
        println!("{:<40} {:>12.3} us/iter ({} iters)", id, mean.as_secs_f64() * 1e6, b.iters);
        self
    }

    /// Opens a named group (a prefix for contained benchmark ids).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }
}

/// Group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measurement budget for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let saved = self.parent.sample_size;
        if let Some(n) = self.sample_size {
            self.parent.sample_size = n;
        }
        self.parent.bench_function(&full, f);
        self.parent.sample_size = saved;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: usize,
}

impl Bencher {
    /// Times repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up: a few untimed runs
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let n = self.budget.max(1) as u64;
        let t0 = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        self.elapsed += t0.elapsed();
        self.iters += n;
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fns:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($fns(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
