//! # rlgraph
//!
//! A Rust reproduction of **RLgraph: Modular Computation Graphs for Deep
//! Reinforcement Learning** (Schaarschmidt, Mika, Fricke, Yoneki —
//! SysML 2019), including every substrate the paper depends on: a
//! static-graph backend, a define-by-run backend, neural-network layers,
//! replay memories, simulation environments, distributed executors, and a
//! calibrated cluster simulator for paper-scale experiments.
//!
//! ## Quick start
//!
//! ```
//! use rlgraph::prelude::*;
//!
//! # fn main() -> rlgraph_core::Result<()> {
//! // Declare the input spaces; the build infers every internal shape.
//! let state_space = Space::float_box_bounded(&[4], -5.0, 5.0);
//! let action_space = Space::int_box(2);
//!
//! // A declarative agent config (also loadable from JSON).
//! let config = DqnConfig {
//!     network: NetworkSpec::mlp(&[32], Activation::Tanh),
//!     batch_size: 8,
//!     memory_capacity: 1000,
//!     ..DqnConfig::default()
//! };
//! let mut agent = DqnAgent::new(config, &state_space, &action_space)?;
//!
//! // Act, observe, learn — each a single backend call.
//! let states = Tensor::zeros(&[2, 4], DType::F32);
//! let actions = agent.get_actions(states, true)?;
//! assert_eq!(actions.shape(), &[2]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`rlgraph_core`] | component graphs, three-phase build, executors |
//! | [`rlgraph_tensor`] | tensors, kernels, shared gradient rules |
//! | [`rlgraph_graph`] | static dataflow graph, sessions, queues |
//! | [`rlgraph_spaces`] | typed space objects |
//! | [`rlgraph_nn`] | layers, initializers, optimizer math |
//! | [`rlgraph_memory`] | replay buffers, segment trees, n-step |
//! | [`rlgraph_envs`] | GridPong, SeekAvoid, CartPole, vector envs |
//! | [`rlgraph_agents`] | DQN, Ape-X pieces, IMPALA with V-trace |
//! | [`rlgraph_dist`] | Ray-style and parameter-server-style execution |
//! | [`rlgraph_sim`] | calibrated discrete-event cluster simulation |
//! | [`rlgraph_baselines`] | RLlib-style / hand-tuned / DM-style baselines |
//! | [`rlgraph_serve`] | batched multi-replica policy serving |
//! | [`rlgraph_net`] | TCP wire codec, RPC, multi-process runtime |
//! | [`rlgraph_reactor`] | epoll event loop, timer wheel, multiplexed RPC |
//! | [`rlgraph_obs`] | metrics, span tracing, Chrome-trace export |

pub use rlgraph_agents as agents;
pub use rlgraph_baselines as baselines;
pub use rlgraph_core as core;
pub use rlgraph_dist as dist;
pub use rlgraph_envs as envs;
pub use rlgraph_graph as graph;
pub use rlgraph_memory as memory;
pub use rlgraph_net as net;
pub use rlgraph_nn as nn;
pub use rlgraph_obs as obs;
pub use rlgraph_reactor as reactor;
pub use rlgraph_serve as serve;
pub use rlgraph_sim as sim;
pub use rlgraph_spaces as spaces;
pub use rlgraph_tensor as tensor;

/// The most common imports, bundled.
pub mod prelude {
    pub use rlgraph_agents::{Backend, DqnAgent, DqnConfig, EpsilonSchedule, ImpalaConfig};
    pub use rlgraph_core::{
        BuildCtx, Component, ComponentGraphBuilder, ComponentId, ComponentStore, ComponentTest,
        GraphExecutor, OpRef, TestBackend,
    };
    pub use rlgraph_dist::{
        apex_graph, default_apex_placement, default_impala_placement, impala_graph, run_apex,
        run_apex_chaos, run_impala, ApexRunConfig, ApexRunStats, ChaosApexConfig, ChaosReport,
        DriverConfigBuilder, FragmentGraph, ImpalaDriverConfig, ImpalaRunStats, Placement,
        PlacementMap, RunBudget, RunReport, StageKind,
    };
    pub use rlgraph_envs::{CartPole, Env, GridPong, GridPongConfig, SeekAvoid, VectorEnv};
    pub use rlgraph_net::{
        maybe_run_child, run_apex_net, EnvSpec, LaunchMode, NetApexConfig, NetApexStats,
        NetPolicyClient, ServeTcpFrontend, Transport,
    };
    pub use rlgraph_nn::{Activation, LayerSpec, NetworkSpec, OptimizerSpec};
    pub use rlgraph_obs::Recorder;
    pub use rlgraph_serve::{
        greedy_policy_replica, BackpressurePolicy, PolicyClient, PolicyServer, ServeConfig,
    };
    pub use rlgraph_spaces::{Space, SpaceValue};
    pub use rlgraph_tensor::{DType, OpKind, Tensor};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_links() {
        use crate::prelude::*;
        let s = Space::float_box(&[2]);
        assert_eq!(s.flat_dim().unwrap(), 2);
        let t = Tensor::scalar(1.0);
        assert_eq!(t.dtype(), DType::F32);
    }
}
