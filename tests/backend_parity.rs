//! Cross-backend integration: the same component graph built for the
//! static backend and the define-by-run backend must behave identically
//! given identical seeds — the paper's central "unified execution
//! interface" claim (§4.2).

use rlgraph::prelude::*;

fn spaces() -> (Space, Space) {
    (Space::float_box_bounded(&[5], -3.0, 3.0), Space::int_box(3))
}

fn config(backend: Backend) -> DqnConfig {
    DqnConfig {
        backend,
        network: NetworkSpec::mlp(&[24, 24], Activation::Tanh),
        memory_capacity: 256,
        batch_size: 8,
        target_sync_every: 1000,
        seed: 21,
        ..DqnConfig::default()
    }
}

fn observe_fixed(agent: &mut DqnAgent) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let n = 32;
    agent
        .observe(
            Tensor::rand_uniform(&[n, 5], -1.0, 1.0, &mut rng),
            Tensor::rand_int(&[n], 0, 3, &mut rng),
            Tensor::rand_uniform(&[n], -1.0, 1.0, &mut rng),
            Tensor::rand_uniform(&[n, 5], -1.0, 1.0, &mut rng),
            Tensor::zeros(&[n], DType::Bool),
        )
        .unwrap();
}

#[test]
fn greedy_actions_identical_across_backends() {
    let (ss, asp) = spaces();
    let mut a = DqnAgent::new(config(Backend::Static), &ss, &asp).unwrap();
    let mut b = DqnAgent::new(config(Backend::DefineByRun), &ss, &asp).unwrap();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let states = Tensor::rand_uniform(&[7, 5], -1.0, 1.0, &mut rng);
        let act_a = a.get_actions(states.clone(), false).unwrap();
        let act_b = b.get_actions(states, false).unwrap();
        assert_eq!(act_a, act_b);
    }
}

#[test]
fn exploratory_actions_identical_across_backends() {
    // Exploration randomness comes from a seeded kernel shared by design,
    // so even exploring action streams must match.
    let (ss, asp) = spaces();
    let mut a = DqnAgent::new(config(Backend::Static), &ss, &asp).unwrap();
    let mut b = DqnAgent::new(config(Backend::DefineByRun), &ss, &asp).unwrap();
    let states = Tensor::full(&[16, 5], 0.25);
    for _ in 0..4 {
        let act_a = a.get_actions(states.clone(), true).unwrap();
        let act_b = b.get_actions(states.clone(), true).unwrap();
        assert_eq!(act_a, act_b);
    }
}

#[test]
fn update_losses_identical_across_backends() {
    // Identical init seeds + identical memory-sampling seeds → the entire
    // loss trajectory must agree between backends.
    let (ss, asp) = spaces();
    let mut a = DqnAgent::new(config(Backend::Static), &ss, &asp).unwrap();
    let mut b = DqnAgent::new(config(Backend::DefineByRun), &ss, &asp).unwrap();
    observe_fixed(&mut a);
    observe_fixed(&mut b);
    for step in 0..10 {
        let la = a.update().unwrap().expect("data available");
        let lb = b.update().unwrap().expect("data available");
        assert!(
            (la - lb).abs() < 1e-4,
            "losses diverged at step {}: static {} vs dbr {}",
            step,
            la,
            lb
        );
    }
}

#[test]
fn weights_transfer_across_backends() {
    let (ss, asp) = spaces();
    let mut a = DqnAgent::new(config(Backend::Static), &ss, &asp).unwrap();
    observe_fixed(&mut a);
    for _ in 0..5 {
        a.update().unwrap();
    }
    let mut cfg_b = config(Backend::DefineByRun);
    cfg_b.seed = 999; // different init — must be overwritten by import
    let mut b = DqnAgent::new(cfg_b, &ss, &asp).unwrap();
    b.import_model(&a.export_model()).unwrap();
    let states = Tensor::full(&[4, 5], -0.4);
    assert_eq!(
        a.get_actions(states.clone(), false).unwrap(),
        b.get_actions(states, false).unwrap()
    );
}
