//! End-to-end distributed integration: Ape-X and IMPALA pipelines on real
//! threads, driving real environments.

use rlgraph::prelude::*;
use rlgraph_dist::{run_apex, run_impala, ApexRunConfig, ImpalaDriverConfig};
use rlgraph_envs::gridpong::PongObs;
use std::time::Duration;

#[test]
fn apex_on_gridpong_collects_and_learns() {
    let agent = DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[32], Activation::Tanh),
        memory_capacity: 2048,
        batch_size: 16,
        n_step: 3,
        target_sync_every: 20,
        seed: 2,
        ..DqnConfig::default()
    };
    let config = ApexRunConfig {
        agent,
        num_workers: 2,
        envs_per_worker: 2,
        task_size: 64,
        num_shards: 2,
        weight_sync_interval: 8,
        run_duration: Duration::from_millis(2500),
        max_updates: Some(60),
        ..ApexRunConfig::default()
    };
    let stats = run_apex(config, |w, e| {
        let mut cfg = GridPongConfig::learnable((w * 10 + e) as u64);
        cfg.obs = PongObs::Vector;
        Box::new(GridPong::new(cfg))
    })
    .unwrap();
    assert!(stats.env_frames > 500, "frames: {}", stats.env_frames);
    assert!(stats.updates > 0);
    assert!(stats.frames_per_second > 100.0);
    assert!(stats.losses.iter().all(|l| l.is_finite()));
    assert!(stats.mean_recent_return(100).is_some(), "episodes should complete");
}

#[test]
fn impala_on_seekavoid_runs_the_full_pipeline() {
    use rlgraph_envs::SeekAvoidConfig;
    let agent = ImpalaConfig {
        backend: Backend::Static,
        network: NetworkSpec::new(vec![
            LayerSpec::Flatten,
            LayerSpec::Dense { units: 16, activation: Activation::Relu },
        ]),
        rollout_len: 6,
        queue_capacity: 4,
        seed: 6,
        ..ImpalaConfig::default()
    };
    let config = ImpalaDriverConfig {
        agent,
        num_actors: 2,
        envs_per_actor: 1,
        weight_sync_interval: 2,
        run_duration: Duration::from_millis(2500),
        max_updates: Some(40),
        ..ImpalaDriverConfig::default()
    };
    let stats = run_impala(config, |a, e| {
        Box::new(SeekAvoid::new(SeekAvoidConfig {
            seed: (a * 10 + e) as u64,
            render_cost: 1,
            max_steps: 60,
            ..SeekAvoidConfig::default()
        }))
    })
    .unwrap();
    assert!(stats.updates > 0, "learner never updated");
    assert!(stats.env_frames > 0);
    assert!(stats.losses.iter().all(|l| l.is_finite()));
}

/// The headline learning check: the Ape-X pieces (worker with n-step +
/// worker-side priorities, learner with prioritized batches, periodic
/// weight sync) improve GridPong reward over random play. Work-bound, not
/// time-bound, so it is deterministic under any machine load.
#[test]
fn apex_improves_over_random_play() {
    use rlgraph_agents::apex::ApexWorker;
    use rlgraph_agents::components::memory::transitions_to_batch;
    use rlgraph_agents::DqnAgent;
    use rlgraph_envs::{Env as _, VectorEnv};
    let agent_cfg = DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[48, 48], Activation::Tanh),
        memory_capacity: 16_384,
        batch_size: 32,
        n_step: 3,
        target_sync_every: 50,
        epsilon: EpsilonSchedule { start: 1.0, end: 0.05, decay_steps: 3_000 },
        seed: 13,
        ..DqnConfig::default()
    };
    // CartPole gives a dense learning signal (return = episode length,
    // random play ≈ 20, learnable to 100+ within a few thousand samples).
    let vec_env = VectorEnv::from_factory(4, |i| {
        Box::new(rlgraph_envs::CartPole::new(1300 + i as u64, 200)) as Box<dyn rlgraph_envs::Env>
    })
    .unwrap();
    let mut worker = ApexWorker::new(agent_cfg.clone(), vec_env).unwrap();
    let e = rlgraph_envs::CartPole::new(0, 200);
    let mut learner = DqnAgent::new(agent_cfg, &e.state_space(), &e.action_space()).unwrap();
    let mut returns: Vec<f32> = Vec::new();
    for _round in 0..50 {
        let batch = worker.collect(128).unwrap();
        returns.extend(batch.episode_returns.iter().copied());
        let [s, a, r, s2, t] = transitions_to_batch(&batch.transitions).unwrap();
        let p = Tensor::from_vec(batch.priorities.clone(), &[batch.priorities.len()]).unwrap();
        learner.observe_with_priorities(s, a, r, s2, t, p).unwrap();
        if learner.ready_to_update() {
            for _ in 0..24 {
                learner.update().unwrap();
            }
        }
        worker.agent_mut().set_weights(&learner.get_weights()).unwrap();
    }
    let n = returns.len();
    assert!(n >= 10, "need completed episodes, got {}", n);
    let early: f32 = returns[..n / 4].iter().sum::<f32>() / (n / 4) as f32;
    let late: f32 = returns[n - n / 4..].iter().sum::<f32>() / (n / 4) as f32;
    assert!(
        late > early * 1.3,
        "no learning signal: early {:.1} late {:.1} over {} episodes",
        early,
        late,
        n
    );
}
