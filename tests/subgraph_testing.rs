//! Integration: the paper's Listing 1 workflow — building arbitrary
//! sub-graphs from declared spaces and driving them with sampled inputs.

use rand::SeedableRng;
use rlgraph::prelude::*;
use rlgraph_agents::components::{DqnLoss, Policy};
use rlgraph_core::ComponentTest;

#[test]
fn policy_subgraph_from_spaces() {
    // Listing 1: build a Policy for declared state/action spaces, then
    // call an API method with sampled inputs.
    let mut store = ComponentStore::new();
    let policy = Policy::new(
        &mut store,
        "recurrent-policy",
        &NetworkSpec::mlp(&[32, 32], Activation::Relu),
        5,
        true,
        1,
    );
    let mut test = ComponentTest::with_store(
        store,
        policy,
        &[("q_values", vec![Space::float_box(&[64]).with_batch_rank()])],
        TestBackend::Static,
    )
    .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let (_, out) = test.test_with_samples("q_values", 6, &mut rng).unwrap();
    assert_eq!(out[0].shape(), &[6, 5]);
}

#[test]
fn loss_subgraph_with_container_like_inputs() {
    // Components are fully specified by their input spaces, so the same
    // loss builds for any record layout.
    for state_dim in [4usize, 16, 64] {
        let _ = state_dim; // the loss consumes q-values, not raw states
        let qs = Space::float_box_bounded(&[7], -50.0, 50.0).with_batch_rank();
        let scalar_f = Space::float_box_bounded(&[], -10.0, 10.0).with_batch_rank();
        let mut test = ComponentTest::new(
            DqnLoss::new("loss", 0.95, 2, true, true),
            &[(
                "loss",
                vec![
                    qs.clone(),
                    Space::int_box(7).with_batch_rank(),
                    scalar_f.clone(),
                    qs.clone(),
                    qs,
                    Space::bool_box().with_batch_rank(),
                    scalar_f,
                ],
            )],
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (_, out) = test.test_with_samples("loss", 12, &mut rng).unwrap();
        assert!(out[0].scalar_value().unwrap().is_finite());
        assert_eq!(out[1].shape(), &[12]);
    }
}

#[test]
fn nested_space_flatten_split_merge() {
    // The space utilities behind rlgraph's auto split/merge of containers.
    let space = Space::dict([
        ("camera", Space::float_box(&[3, 8, 8])),
        ("proprio", Space::tuple([Space::float_box(&[7]), Space::int_box(4)])),
    ])
    .with_batch_rank();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let value = space.sample_batch(5, &mut rng);
    assert!(space.contains(&value));
    let leaves: Vec<Tensor> = value.flatten().into_iter().map(|(_, t)| t.clone()).collect();
    assert_eq!(leaves.len(), 3);
    assert_eq!(leaves[0].shape(), &[5, 3, 8, 8]);
    let rebuilt = SpaceValue::unflatten(&space, &leaves).unwrap();
    assert_eq!(rebuilt, value);
}

#[test]
fn shape_errors_name_the_offending_scope() {
    // Dummy propagation surfaces shape errors during the build, pointing
    // at the component (paper §3.3: the build phases "automatically detect
    // problems when manipulating complex spaces").
    use rlgraph_agents::components::Conv2dLayer;
    let err = ComponentTest::new(
        Conv2dLayer::new("conv-0", 8, 3, 1, 0, Activation::Relu, 0),
        // flat input where [c, h, w] is required
        &[("call", vec![Space::float_box(&[64]).with_batch_rank()])],
    )
    .err()
    .expect("build must fail");
    assert!(err.message().contains("conv"), "unhelpful error: {}", err.message());
}
