//! Integration: the session-call economics the paper's evaluation builds
//! on — every agent-API request is exactly one session run, with per-op
//! and per-device accounting available for systematic component analysis.

use rlgraph::prelude::*;
use rlgraph_agents::dqn::{dqn_api_spaces, DqnRoot};
use rlgraph_core::ComponentGraphBuilder;

fn build_static_dqn() -> rlgraph_core::StaticExecutor {
    let config = DqnConfig {
        network: NetworkSpec::mlp(&[16], Activation::Tanh),
        memory_capacity: 128,
        batch_size: 8,
        seed: 5,
        ..DqnConfig::default()
    };
    let mut store = ComponentStore::new();
    let root = DqnRoot::compose(&mut store, &config, 3);
    let root_id = store.add(root);
    let mut builder = ComponentGraphBuilder::new(root_id).dummy_batch(8);
    for (m, s) in dqn_api_spaces(&Space::float_box(&[4]), &Space::int_box(3)) {
        builder = builder.api_method(&m, s);
    }
    builder.build_static(store).unwrap().0
}

#[test]
fn one_session_run_per_api_request() {
    let mut exec = build_static_dqn();
    let states = Tensor::full(&[2, 4], 0.5);
    use rlgraph_core::GraphExecutor as _;
    for i in 1..=5u64 {
        exec.execute("get_actions", &[states.clone()]).unwrap();
        assert_eq!(exec.session().stats().runs, i, "each request must be one run call");
    }
}

#[test]
fn per_op_accounting_names_components_work() {
    let mut exec = build_static_dqn();
    use rlgraph_core::GraphExecutor as _;
    // fill the memory, then run one update
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let n = 16;
    exec.execute(
        "observe",
        &[
            Tensor::rand_uniform(&[n, 4], 0.0, 1.0, &mut rng),
            Tensor::rand_int(&[n], 0, 3, &mut rng),
            Tensor::rand_uniform(&[n], -1.0, 1.0, &mut rng),
            Tensor::rand_uniform(&[n, 4], 0.0, 1.0, &mut rng),
            Tensor::zeros(&[n], DType::Bool),
        ],
    )
    .unwrap();
    exec.session_mut().reset_stats();
    exec.execute("update", &[]).unwrap();
    let stats = exec.session().stats();
    assert_eq!(stats.runs, 1, "the whole update is one session call");
    // the profile names the memory kernels and the numeric work
    assert!(stats.per_op.keys().any(|k| k.contains("replay_sample")), "{:?}", stats.per_op.keys());
    assert!(stats.per_op.keys().any(|k| k.contains("replay_update_priorities")));
    assert!(stats.per_op.contains_key("matmul"));
    assert!(stats.per_op.keys().any(|k| k.starts_with("assign")), "optimizer assigns missing");
    assert!(stats.ops_executed > 50, "update should execute a real graph");
}

#[test]
fn dispatch_counters_reflect_component_depth_on_dbr() {
    // The define-by-run executor exposes the per-trace dispatch counts the
    // paper's overhead discussion is about.
    let config = DqnConfig {
        backend: Backend::DefineByRun,
        network: NetworkSpec::mlp(&[16, 16], Activation::Tanh),
        memory_capacity: 64,
        batch_size: 4,
        seed: 5,
        ..DqnConfig::default()
    };
    let mut agent = DqnAgent::new(config, &Space::float_box(&[4]), &Space::int_box(3)).unwrap();
    let states = Tensor::full(&[2, 4], 0.5);
    agent.get_actions(states.clone(), false).unwrap();
    agent.get_actions(states, false).unwrap();
    // through the trait we can't read counters, but executing repeatedly
    // must keep producing identical greedy actions (trace determinism)
    let a = agent.get_actions(Tensor::full(&[1, 4], 0.1), false).unwrap();
    let b = agent.get_actions(Tensor::full(&[1, 4], 0.1), false).unwrap();
    assert_eq!(a, b);
}
