//! Integration: the define-by-run contracted fast path ("edge
//! contraction", paper §5.1) — correctness, automatic bail-out, and
//! dispatch elimination.

use rlgraph::prelude::*;
use rlgraph_agents::components::Policy;
use rlgraph_core::DbrExecutor;

struct ActRoot {
    policy: ComponentId,
}

impl Component for ActRoot {
    fn name(&self) -> &str {
        "act-root"
    }
    fn api_methods(&self) -> Vec<String> {
        vec!["act".into()]
    }
    fn call_api(
        &mut self,
        _m: &str,
        ctx: &mut BuildCtx,
        id: ComponentId,
        inputs: &[OpRef],
    ) -> rlgraph_core::Result<Vec<OpRef>> {
        let q = ctx.call(self.policy, "q_values", inputs)?[0];
        ctx.graph_fn(id, "argmax", &[q], 1, |ctx, ins| {
            Ok(vec![ctx.emit(OpKind::ArgMax { axis: 1 }, &[ins[0]])?])
        })
    }
    fn sub_components(&self) -> Vec<ComponentId> {
        vec![self.policy]
    }
}

fn build_exec() -> DbrExecutor {
    let mut store = ComponentStore::new();
    let policy = Policy::new(
        &mut store,
        "policy",
        &NetworkSpec::mlp(&[16, 16], Activation::Tanh),
        4,
        true,
        8,
    );
    let policy_id = store.add(policy);
    let root = store.add(ActRoot { policy: policy_id });
    let builder = ComponentGraphBuilder::new(root)
        .api_method("act", vec![Space::float_box_bounded(&[5], -2.0, 2.0).with_batch_rank()]);
    builder.build_dbr(store).unwrap().0
}

#[test]
fn contracted_replay_matches_traced_execution() {
    use rand::SeedableRng;
    let mut traced = build_exec();
    let mut fast = build_exec();
    fast.enable_fast_path("act");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    // First call records; later calls replay.
    for round in 0..6 {
        let x = Tensor::rand_uniform(&[4, 5], -1.0, 1.0, &mut rng);
        let a = traced.execute("act", &[x.clone()]).unwrap();
        let b = fast.execute("act", &[x]).unwrap();
        assert_eq!(a[0], b[0], "divergence at round {}", round);
    }
    assert!(fast.is_contracted("act"));
}

#[test]
fn contraction_eliminates_component_dispatch() {
    let mut fast = build_exec();
    fast.enable_fast_path("act");
    let x = Tensor::full(&[2, 5], 0.5);
    fast.execute("act", &[x.clone()]).unwrap(); // records
    let (api_before, fn_before) = fast.dispatch_counters();
    for _ in 0..10 {
        fast.execute("act", &[x.clone()]).unwrap();
    }
    let (api_after, fn_after) = fast.dispatch_counters();
    assert_eq!(api_before, api_after, "replay must not route api calls");
    assert_eq!(fn_before, fn_after, "replay must not enter graph functions");
}

#[test]
fn contraction_survives_batch_size_changes() {
    let mut fast = build_exec();
    fast.enable_fast_path("act");
    fast.execute("act", &[Tensor::full(&[2, 5], 0.1)]).unwrap();
    assert!(fast.is_contracted("act"));
    // replays with other batch sizes (runtime-shape kernels)
    let out = fast.execute("act", &[Tensor::full(&[7, 5], 0.1)]).unwrap();
    assert_eq!(out[0].shape(), &[7]);
}

#[test]
fn methods_with_state_mutation_refuse_contraction() {
    // An update method (gradients + assigns) must fall back to tracing.
    let (ss, asp) = (Space::float_box_bounded(&[4], -2.0, 2.0), Space::int_box(2));
    let config = DqnConfig {
        backend: Backend::DefineByRun,
        network: NetworkSpec::mlp(&[8], Activation::Tanh),
        memory_capacity: 64,
        batch_size: 4,
        seed: 1,
        ..DqnConfig::default()
    };
    let mut agent = DqnAgent::new(config, &ss, &asp).unwrap();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    agent
        .observe(
            Tensor::rand_uniform(&[8, 4], -1.0, 1.0, &mut rng),
            Tensor::rand_int(&[8], 0, 2, &mut rng),
            Tensor::rand_uniform(&[8], -1.0, 1.0, &mut rng),
            Tensor::rand_uniform(&[8, 4], -1.0, 1.0, &mut rng),
            Tensor::zeros(&[8], DType::Bool),
        )
        .unwrap();
    // Updates still work repeatedly (no stale contraction corrupts state).
    let l1 = agent.update().unwrap().unwrap();
    let l2 = agent.update().unwrap().unwrap();
    assert!(l1.is_finite() && l2.is_finite());
}
